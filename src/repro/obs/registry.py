"""Labelled counters/gauges/histograms with a cheap no-op default.

:class:`MetricsRegistry` is the live-metrics side of the observability
layer: the runtime registers named instruments once (idempotently — two
components asking for the same counter share it) and updates them on the
hot path; :func:`repro.obs.prom.render_prometheus` turns a registry into
the text the ``/metrics`` endpoint serves.

The off switch is structural, not conditional: :class:`NullRegistry`
returns shared do-nothing instruments, so un-instrumented runs pay one
attribute access and a no-op call per update — no branching, no state, and
provably no effect on results (instrument updates only ever *read* the
values the runtime already computed).

Instruments
-----------
* :class:`Counter` — monotonically increasing float (``inc``).
* :class:`Gauge` — a settable level (``set``/``inc``/``dec``).
* histograms — plain :class:`~repro.obs.histo.LogHistogram` instances, so
  the registry's latency distributions share the stream metrics' bucket
  semantics and merge/checkpoint behavior.

Labels: pass ``labels=("phase",)`` at registration and
``family.labels("solve")`` per update.  Label values are positional and
cached, so the per-update cost after the first call is one dict lookup.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.obs.histo import LogHistogram

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

_KINDS = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing sample counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative — counters never go down)."""
        if amount < 0:
            raise ValueError(f"counters only increase, got inc({amount})")
        self.value += amount


class Gauge:
    """A settable instantaneous level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Family:
    """One named metric family: its instruments, keyed by label values."""

    __slots__ = ("name", "help", "kind", "labelnames", "_children", "_options")

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        options: Mapping[str, Any],
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], Any] = {}
        self._options = dict(options)

    def _make(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return LogHistogram(**self._options)

    def labels(self, *values: str):
        """The instrument for one label-value tuple (created on demand)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}, "
                f"got {len(values)} value(s)"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    def children(self) -> list[tuple[tuple[str, ...], Any]]:
        """(label values, instrument) pairs in deterministic sorted order."""
        return sorted(self._children.items())


class MetricsRegistry:
    """A process-local collection of named metric families."""

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, Family] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        options: Mapping[str, Any],
    ):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = Family(
                name, help_text, kind, tuple(labels), options
            )
        elif family.kind != kind or family.labelnames != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind} with "
                f"labels {family.labelnames}; cannot re-register as a {kind} "
                f"with labels {tuple(labels)}"
            )
        return family if family.labelnames else family.labels()

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        """Register (or fetch) a counter; returns the family when labelled."""
        return self._register(name, help_text, "counter", labels, {})

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()):
        """Register (or fetch) a gauge; returns the family when labelled."""
        return self._register(name, help_text, "gauge", labels, {})

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        **options: Any,
    ):
        """Register (or fetch) a :class:`LogHistogram`-backed distribution.

        ``options`` are :class:`LogHistogram` constructor arguments —
        typically one of the shared configurations
        (:data:`~repro.obs.histo.SECONDS_HISTOGRAM`).
        """
        return self._register(name, help_text, "histogram", labels, options)

    def families(self) -> list[Family]:
        """All registered families, sorted by name (deterministic)."""
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> dict[str, Any]:
        """A deterministic plain-dict view of every instrument's state.

        Counter/gauge children snapshot to their float value; histogram
        children to their :meth:`~repro.obs.histo.LogHistogram.state_dict`.
        Two registries fed the same updates in any order produce equal
        snapshots — pinned by the registry determinism tests.
        """
        out: dict[str, Any] = {}
        for family in self.families():
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": {
                    ",".join(key): (
                        child.state_dict()
                        if isinstance(child, LogHistogram)
                        else child.value
                    )
                    for key, child in family.children()
                },
            }
        return out


class _NullInstrument:
    """One do-nothing object standing in for every instrument kind."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    def record_many(self, values) -> None:
        pass

    def labels(self, *values: str) -> "_NullInstrument":
        return self


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The off switch: every registration returns the shared no-op."""

    enabled = False

    def counter(self, name, help_text="", labels=()):
        return _NULL_INSTRUMENT

    def gauge(self, name, help_text="", labels=()):
        return _NULL_INSTRUMENT

    def histogram(self, name, help_text="", labels=(), **options):
        return _NULL_INSTRUMENT

    def families(self):
        return []

    def snapshot(self):
        return {}


#: Shared default used wherever no registry was configured.
NULL_REGISTRY = NullRegistry()
