"""repro.obs — the observability layer: histograms, metrics, spans.

Four modules, one bundle:

* :mod:`repro.obs.histo` — :class:`LogHistogram`, the HDR-style
  log-bucketed mergeable histogram (O(1) record, bounded relative error,
  checkpointable ``state_dict``) backing every latency distribution in the
  project;
* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, labelled
  counters/gauges/histograms with a structural no-op default
  (:data:`NULL_REGISTRY`);
* :mod:`repro.obs.trace` — :class:`Tracer`, Chrome trace-event / Perfetto
  span recording with worker-process span shipping and a schema validator;
* :mod:`repro.obs.prom` — Prometheus text exposition + the stdlib-HTTP
  ``/metrics`` endpoint (:class:`MetricsServer`).

:class:`Observability` carries one registry + one tracer through the
serving stack (``StreamRuntime(obs=...)``, the ``stream`` CLI's
``--trace``/``--metrics-port``).  The default, :data:`NULL_OBS`, is fully
inert: every instrument is a shared no-op and every span a shared null
context manager, so an un-instrumented run executes the same arithmetic it
did before this layer existed — pinned bit-identical by the obs
differential tests.
"""

from __future__ import annotations

from repro.obs.histo import LogHistogram, SECONDS_HISTOGRAM, WAIT_HOURS_HISTOGRAM
from repro.obs.prom import MetricsServer, render_prometheus, validate_exposition
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, validate_trace_events

__all__ = [
    "LogHistogram",
    "SECONDS_HISTOGRAM",
    "WAIT_HOURS_HISTOGRAM",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_trace_events",
    "MetricsServer",
    "render_prometheus",
    "validate_exposition",
    "Observability",
    "NULL_OBS",
]


class Observability:
    """The registry + tracer pair threaded through the serving layers.

    ``enabled`` is the hot-path gate: instrumented code checks this one
    boolean (or the tracer's own ``enabled``) before building span/metric
    arguments, so the off configuration costs a single attribute read per
    round phase.
    """

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        registry: MetricsRegistry | NullRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def enabled(self) -> bool:
        """Whether any telemetry sink is live."""
        return self.registry.enabled or self.tracer.enabled


#: The inert default every un-instrumented call site shares.
NULL_OBS = Observability()
