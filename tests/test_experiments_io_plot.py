"""Tests for repro.experiments.io (persistence) and ascii_plot (rendering)."""

import json

import pytest

from repro.experiments import SweepResult
from repro.experiments.ascii_plot import plot_series
from repro.experiments.io import (
    export_csv,
    load_sweep,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.framework.metrics import MetricsResult


def make_sweep(values=(100.0, 200.0, 300.0)):
    result = SweepResult(parameter="num_tasks", values=values)
    for algorithm, base in (("MTA", 0.2), ("IA", 0.7)):
        result.series[algorithm] = {
            value: MetricsResult(
                algorithm=algorithm,
                num_assigned=int(value // 2),
                average_influence=base + 0.001 * value,
                average_propagation=3.0,
                average_travel_km=10.0,
                cpu_seconds=0.01,
            )
            for value in values
        }
    return result


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        original = make_sweep()
        restored = sweep_from_dict(sweep_to_dict(original))
        assert restored.parameter == original.parameter
        assert restored.values == original.values
        for algorithm in original.algorithms():
            for metric in ("num_assigned", "average_influence", "cpu_seconds"):
                assert restored.metric_series(algorithm, metric) == pytest.approx(
                    original.metric_series(algorithm, metric)
                )

    def test_file_round_trip(self, tmp_path):
        original = make_sweep()
        path = save_sweep(original, tmp_path / "nested" / "sweep.json")
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["parameter"] == "num_tasks"
        restored = load_sweep(path)
        # JSON is written with sorted keys (diff-friendly), so insertion
        # order is not preserved — only membership is.
        assert set(restored.algorithms()) == set(original.algorithms())

    def test_csv_export(self, tmp_path):
        path = export_csv(make_sweep(), tmp_path / "sweep.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == (
            "algorithm,num_tasks,num_assigned,average_influence,"
            "average_propagation,average_travel_km,cpu_seconds"
        )
        # 2 algorithms x 3 values data rows.
        assert len(lines) == 1 + 6
        assert lines[1].startswith("MTA,100.0,50,")


class TestAsciiPlot:
    def test_empty_result_rejected(self):
        empty = SweepResult(parameter="num_tasks", values=(1.0,))
        with pytest.raises(ValueError):
            plot_series(empty, "average_influence")

    def test_contains_axes_and_legend(self):
        text = plot_series(make_sweep(), "average_influence", title="AI plot")
        assert text.startswith("AI plot")
        assert "┤" in text
        assert "(num_tasks)" in text
        assert "* MTA" in text and "o IA" in text

    def test_y_axis_spans_data_range(self):
        sweep = make_sweep()
        text = plot_series(sweep, "average_influence")
        top = max(
            max(sweep.metric_series(a, "average_influence"))
            for a in sweep.algorithms()
        )
        assert f"{top:>10.4f}" in text

    def test_constant_series_does_not_divide_by_zero(self):
        text = plot_series(make_sweep(), "average_propagation")
        assert "3.0000" in text

    def test_single_value_sweep(self):
        text = plot_series(make_sweep(values=(100.0,)), "average_influence")
        assert "(num_tasks)" in text
