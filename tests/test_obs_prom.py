"""Tests for repro.obs.prom — exposition rendering and the /metrics server."""

import urllib.error
import urllib.request

import pytest

from repro.exceptions import DataError
from repro.obs.histo import SECONDS_HISTOGRAM
from repro.obs.prom import MetricsServer, render_prometheus, validate_exposition
from repro.obs.registry import MetricsRegistry


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("repro_rounds_total", "rounds executed").inc(3)
    registry.gauge("repro_online_workers", "live workers").set(12)
    phases = registry.histogram(
        "repro_phase_seconds", "per-phase seconds", labels=("phase",),
        **SECONDS_HISTOGRAM,
    )
    phases.labels("solve").record(0.25)
    phases.labels("drain").record(0.0125)
    return registry


class TestRender:
    def test_help_type_and_samples(self):
        text = render_prometheus(sample_registry())
        assert "# HELP repro_rounds_total rounds executed" in text
        assert "# TYPE repro_rounds_total counter" in text
        assert "repro_rounds_total 3.0" in text
        assert "# TYPE repro_phase_seconds histogram" in text
        assert 'repro_phase_seconds_bucket{phase="solve",le="+Inf"} 1' in text
        assert 'repro_phase_seconds_count{phase="solve"} 1' in text

    def test_render_passes_its_own_validator(self):
        validate_exposition(render_prometheus(sample_registry()))

    def test_empty_registry_renders_empty(self):
        text = render_prometheus(MetricsRegistry())
        assert text == "\n"
        validate_exposition(text)

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("bad name")
        with pytest.raises(ValueError, match="invalid metric name"):
            render_prometheus(registry)


class TestValidateExposition:
    def test_rejects_malformed_sample(self):
        with pytest.raises(DataError, match="malformed sample"):
            validate_exposition("not a metric line\n")

    def test_rejects_bad_comment(self):
        with pytest.raises(DataError, match="malformed comment"):
            validate_exposition("# NOPE foo bar\n")

    def test_rejects_bad_type(self):
        with pytest.raises(DataError, match="bad TYPE"):
            validate_exposition("# TYPE repro_x flurble\n")

    def test_rejects_unquoted_label_value(self):
        with pytest.raises(DataError, match="label pair"):
            validate_exposition("repro_x{phase=solve} 1\n")

    def test_histogram_contract_enforced(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 1\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 1\n"
        )
        with pytest.raises(DataError, match=r"\+Inf"):
            validate_exposition(text)


class TestMetricsServer:
    def test_live_scrape_on_ephemeral_port(self):
        registry = sample_registry()
        with MetricsServer(registry, port=0) as server:
            assert server.port > 0
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                content_type = response.headers["Content-Type"]
                assert content_type.startswith("text/plain")
                assert "version=0.0.4" in content_type
                body = response.read().decode("utf-8")
        validate_exposition(body)
        assert "repro_rounds_total 3.0" in body

    def test_scrape_reflects_live_updates(self):
        registry = sample_registry()
        with MetricsServer(registry, port=0) as server:
            registry.counter("repro_rounds_total").inc(7)
            with urllib.request.urlopen(server.url, timeout=5) as response:
                body = response.read().decode("utf-8")
        assert "repro_rounds_total 10.0" in body

    def test_non_metrics_path_is_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            other = server.url.replace("/metrics", "/other")
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(other, timeout=5)
            assert info.value.code == 404

    def test_close_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0).start()
        server.close()
        server.close()
