"""Crash-recovery smoke: SIGKILL the stream CLI mid-run, resume, compare.

The serving claim behind the v5 checkpoint format: a hard crash (OOM
killer, power loss — modelled here as ``SIGKILL``, which skips every
handler) between two periodic saves costs at most the rounds since the
last manifest, and replaying from that manifest reproduces the
uninterrupted run event for event.  The comparison is over the *final
checkpoints* of both runs — every pool entry, metrics row and RNG word —
excluding only the wall-clock timing columns, which honest measurement
makes unequal.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.stream import load_checkpoint

REPO = Path(__file__).resolve().parent.parent

#: Columns of the ``metrics_rounds`` rectangle holding measured seconds
#: (round/drain/prepare/solve/merge) — the only legitimately run-dependent
#: state in a checkpoint.  Order is pinned by ``RoundRecord.__slots__``.
TIMING_COLUMNS = (9, 13, 14, 15, 16)

STREAM_ARGS = [
    "stream", "--scale", "0.06", "--seed", "11", "--no-influence",
    "--show-rounds", "0",
]

#: The segmented variant: a multi-day world streamed through one-day
#: event-log segments, so the crash lands while only a window of the
#: horizon exists in memory.
SEGMENTED_ARGS = [*STREAM_ARGS, "--days", "3", "--segment-days", "1"]


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def run_cli(args, cwd, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=cwd, env=cli_env(), timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def checkpoint_payloads(path):
    """(meta, arrays) of a manifest, timing state zeroed out."""
    arrays = load_checkpoint(path)
    meta = json.loads(json.dumps(arrays.pop("meta")))
    rounds = np.array(arrays["metrics_rounds"], dtype=float)
    if rounds.size:
        rounds[:, TIMING_COLUMNS] = 0.0
    arrays["metrics_rounds"] = rounds
    arrays["metrics_wall_seconds"] = np.zeros(())
    return meta, arrays


def test_sigkill_mid_round_then_resume_is_event_identical(tmp_path):
    reference_dir = tmp_path / "reference"
    crash_dir = tmp_path / "crash"
    reference_dir.mkdir()
    crash_dir.mkdir()

    # The uninterrupted reference run, final state checkpointed.
    completed = run_cli(
        [*STREAM_ARGS, "--checkpoint", "run"], cwd=reference_dir
    )
    assert completed.returncode == 0, completed.stdout
    reference = reference_dir / "run.ckpt"
    assert reference.exists()

    # The victim: periodic saves every 2 rounds; SIGKILL it the moment the
    # first manifest lands on disk.
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *STREAM_ARGS,
         "--checkpoint", "run", "--checkpoint-every", "2"],
        cwd=crash_dir, env=cli_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    manifest = crash_dir / "run.ckpt"
    try:
        deadline = time.monotonic() + 240
        while not manifest.exists() and time.monotonic() < deadline:
            if victim.poll() is not None:
                pytest.fail(
                    "stream CLI exited before its first periodic save:\n"
                    + (victim.communicate()[0] or "")
                )
            time.sleep(0.01)
        assert manifest.exists(), "no periodic checkpoint appeared in time"
        killed_mid_run = victim.poll() is None
        victim.send_signal(signal.SIGKILL)
    finally:
        victim.communicate(timeout=60)
    assert killed_mid_run, "run finished before SIGKILL; nothing was tested"

    # The manifest the crash left behind is complete and loadable (atomic
    # replace means there is no torn state to find), and it stops short of
    # the full stream.
    crashed_meta, _ = checkpoint_payloads(manifest)
    assert crashed_meta["done"] is False

    # Resume from it to the end of the stream; final state checkpointed
    # over the same manifest path.
    resumed = run_cli(
        [*STREAM_ARGS, "--resume", "run", "--checkpoint", "run"],
        cwd=crash_dir,
    )
    assert resumed.returncode == 0, resumed.stdout
    assert "resumed from" in resumed.stdout

    ref_meta, ref_arrays = checkpoint_payloads(reference)
    got_meta, got_arrays = checkpoint_payloads(manifest)
    assert got_meta == ref_meta
    assert sorted(got_arrays) == sorted(ref_arrays)
    for name in ref_arrays:
        np.testing.assert_array_equal(
            got_arrays[name], ref_arrays[name], err_msg=name
        )


def test_sigkill_mid_segment_then_resume_is_event_identical(tmp_path):
    """The segmented twin: the victim streams one-day event-log segments,
    dies mid-segment, and the resume rebuilds the horizon lazily — final
    state still matches the uninterrupted segmented run bit for bit."""
    reference_dir = tmp_path / "reference"
    crash_dir = tmp_path / "crash"
    reference_dir.mkdir()
    crash_dir.mkdir()

    completed = run_cli(
        [*SEGMENTED_ARGS, "--checkpoint", "run"], cwd=reference_dir
    )
    assert completed.returncode == 0, completed.stdout
    reference = reference_dir / "run.ckpt"
    assert reference.exists()

    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *SEGMENTED_ARGS,
         "--checkpoint", "run", "--checkpoint-every", "2"],
        cwd=crash_dir, env=cli_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    manifest = crash_dir / "run.ckpt"
    try:
        deadline = time.monotonic() + 240
        while not manifest.exists() and time.monotonic() < deadline:
            if victim.poll() is not None:
                pytest.fail(
                    "stream CLI exited before its first periodic save:\n"
                    + (victim.communicate()[0] or "")
                )
            time.sleep(0.01)
        assert manifest.exists(), "no periodic checkpoint appeared in time"
        killed_mid_run = victim.poll() is None
        victim.send_signal(signal.SIGKILL)
    finally:
        victim.communicate(timeout=60)
    assert killed_mid_run, "run finished before SIGKILL; nothing was tested"

    crashed_meta, _ = checkpoint_payloads(manifest)
    assert crashed_meta["done"] is False
    # The crash left a v7 segmented manifest whose cursor names a spot
    # strictly inside a segment — the resume has to rebuild that window.
    segments = crashed_meta["segments"]
    assert segments is not None and segments["count"] >= 2
    segment, offset = segments["cursor"]
    assert offset > 0, "checkpoint cursor landed on a seam; nothing tested"

    resumed = run_cli(
        [*SEGMENTED_ARGS, "--resume", "run", "--checkpoint", "run"],
        cwd=crash_dir,
    )
    assert resumed.returncode == 0, resumed.stdout
    assert "resumed from" in resumed.stdout

    ref_meta, ref_arrays = checkpoint_payloads(reference)
    got_meta, got_arrays = checkpoint_payloads(manifest)
    assert got_meta == ref_meta
    assert sorted(got_arrays) == sorted(ref_arrays)
    for name in ref_arrays:
        np.testing.assert_array_equal(
            got_arrays[name], ref_arrays[name], err_msg=name
        )
