"""Tests for repro.assignment.candidates — index-backed feasibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment import candidate_pairs, compute_feasible
from repro.entities import Task, Worker
from repro.geo import Point


def build_world(worker_coords, task_coords, radius=10.0, valid_hours=5.0, speed=5.0):
    workers = [
        Worker(worker_id=i, location=Point(x, y), reachable_km=radius, speed_kmh=speed)
        for i, (x, y) in enumerate(worker_coords)
    ]
    tasks = [
        Task(task_id=i, location=Point(x, y), publication_time=0.0, valid_hours=valid_hours)
        for i, (x, y) in enumerate(task_coords)
    ]
    return workers, tasks


class TestCandidatePairs:
    def test_empty_inputs(self):
        workers, tasks = build_world([(0, 0)], [(1, 1)])
        assert candidate_pairs([], tasks, 0.0) == []
        assert candidate_pairs(workers, [], 0.0) == []

    def test_unknown_index_kind(self):
        workers, tasks = build_world([(0, 0)], [(1, 1)])
        with pytest.raises(ValueError):
            candidate_pairs(workers, tasks, 0.0, index="rtree")

    def test_auto_matches_explicit_kinds(self):
        # Small world: auto scans densely; results must match the kd-tree.
        rng = np.random.default_rng(7)
        worker_coords = [(float(x), float(y)) for x, y in rng.uniform(0, 20, (12, 2))]
        task_coords = [(float(x), float(y)) for x, y in rng.uniform(0, 20, (9, 2))]
        workers, tasks = build_world(worker_coords, task_coords)
        auto = candidate_pairs(workers, tasks, 0.0, index="auto")
        dense = candidate_pairs(workers, tasks, 0.0, index="dense")
        kdtree = candidate_pairs(workers, tasks, 0.0, index="kdtree")
        key = lambda p: (p.worker_index, p.task_index)
        assert sorted(auto, key=key) == sorted(dense, key=key) == sorted(kdtree, key=key)

    def test_auto_uses_index_above_threshold(self, monkeypatch):
        import repro.assignment.candidates as candidates_module

        monkeypatch.setattr(candidates_module, "DENSE_SCAN_THRESHOLD", 0)
        workers, tasks = build_world([(0.0, 0.0)], [(1.0, 1.0)])
        auto = candidate_pairs(workers, tasks, 0.0, index="auto")
        dense = candidate_pairs(workers, tasks, 0.0, index="dense")
        assert [(p.worker_index, p.task_index) for p in auto] == [
            (p.worker_index, p.task_index) for p in dense
        ]

    def test_radius_excludes_far_task(self):
        workers, tasks = build_world([(0, 0)], [(50, 50)], radius=5.0)
        assert candidate_pairs(workers, tasks, 0.0) == []

    def test_deadline_excludes_slow_worker(self):
        # Task 20 km away, radius allows it, but 5 km/h cannot make a
        # 1-hour deadline.
        workers, tasks = build_world([(0, 0)], [(20, 0)], radius=25.0, valid_hours=1.0)
        assert candidate_pairs(workers, tasks, 0.0) == []
        # A fast worker makes it.
        fast_workers, _ = build_world([(0, 0)], [(20, 0)], radius=25.0, speed=25.0)
        got = candidate_pairs(fast_workers, tasks, 0.0)
        assert [(p.worker_index, p.task_index) for p in got] == [(0, 0)]

    def test_current_time_counts_against_deadline(self):
        workers, tasks = build_world([(0, 0)], [(1, 0)], radius=5.0, valid_hours=2.0)
        assert candidate_pairs(workers, tasks, 0.0) != []
        assert candidate_pairs(workers, tasks, 10.0) == []

    @pytest.mark.parametrize("kind", ["kdtree", "grid", "dense"])
    def test_matches_dense_mask(self, kind, tiny_instance):
        """Every index kind reproduces compute_feasible exactly."""
        workers = tiny_instance.workers
        tasks = tiny_instance.tasks
        t = tiny_instance.current_time
        feasible = compute_feasible(workers, tasks, t)
        expected = set(zip(*feasible.feasible_indices()))
        got = {
            (p.worker_index, p.task_index)
            for p in candidate_pairs(workers, tasks, t, index=kind)
        }
        assert got == {(int(r), int(c)) for r, c in expected}

    @pytest.mark.parametrize("kind", ["kdtree", "grid"])
    @settings(max_examples=25, deadline=None)
    @given(
        worker_coords=st.lists(
            st.tuples(st.floats(-30, 30, width=32), st.floats(-30, 30, width=32)),
            min_size=1, max_size=15,
        ),
        task_coords=st.lists(
            st.tuples(st.floats(-30, 30, width=32), st.floats(-30, 30, width=32)),
            min_size=1, max_size=15,
        ),
        radius=st.floats(0.5, 40, width=32),
    )
    def test_index_matches_dense_property(self, kind, worker_coords, task_coords, radius):
        workers, tasks = build_world(worker_coords, task_coords, radius=float(radius))
        dense = candidate_pairs(workers, tasks, 0.0, index="dense")
        indexed = candidate_pairs(workers, tasks, 0.0, index=kind)
        key = lambda pairs: [(p.worker_index, p.task_index) for p in pairs]
        assert key(indexed) == key(dense)
        for a, b in zip(indexed, dense):
            assert a.distance_km == pytest.approx(b.distance_km)

    def test_distances_agree_with_matrix(self, tiny_instance):
        feasible = compute_feasible(
            tiny_instance.workers, tiny_instance.tasks, tiny_instance.current_time
        )
        for pair in candidate_pairs(
            tiny_instance.workers, tiny_instance.tasks, tiny_instance.current_time
        ):
            assert pair.distance_km == pytest.approx(
                float(feasible.distance_km[pair.worker_index, pair.task_index])
            )
