"""Tests for repro.geo.distance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import Point, euclidean, haversine_km, pairwise_euclidean, travel_time_hours
from repro.geo.distance import DEFAULT_SPEED_KMH


class TestEuclidean:
    def test_matches_point_method(self):
        a, b = Point(1, 1), Point(4, 5)
        assert euclidean(a, b) == a.distance_to(b) == pytest.approx(5.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(48.85, 2.35, 48.85, 2.35) == pytest.approx(0.0)

    def test_one_degree_latitude_is_about_111km(self):
        assert haversine_km(0.0, 0.0, 1.0, 0.0) == pytest.approx(111.2, abs=0.5)

    def test_paris_london(self):
        # Paris (48.8566, 2.3522) to London (51.5074, -0.1278) ~ 344 km.
        assert haversine_km(48.8566, 2.3522, 51.5074, -0.1278) == pytest.approx(344, abs=5)

    def test_symmetry(self):
        d1 = haversine_km(10, 20, -30, 40)
        d2 = haversine_km(-30, 40, 10, 20)
        assert d1 == pytest.approx(d2)

    def test_antipodal_is_half_circumference(self):
        assert haversine_km(0, 0, 0, 180) == pytest.approx(20015, abs=10)


class TestTravelTime:
    def test_default_speed_is_paper_value(self):
        assert DEFAULT_SPEED_KMH == 5.0

    def test_time_is_distance_over_speed(self):
        assert travel_time_hours(Point(0, 0), Point(10, 0)) == pytest.approx(2.0)

    def test_custom_speed(self):
        assert travel_time_hours(Point(0, 0), Point(10, 0), speed_kmh=20) == pytest.approx(0.5)

    def test_rejects_non_positive_speed(self):
        with pytest.raises(ValueError):
            travel_time_hours(Point(0, 0), Point(1, 0), speed_kmh=0)


class TestPairwise:
    def test_shape_and_values(self):
        a = [Point(0, 0), Point(1, 0)]
        b = [Point(0, 0), Point(0, 2), Point(3, 4)]
        matrix = pairwise_euclidean(a, b)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(0.0)
        assert matrix[0, 1] == pytest.approx(2.0)
        assert matrix[0, 2] == pytest.approx(5.0)
        assert matrix[1, 0] == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert pairwise_euclidean([], [Point(0, 0)]).shape == (0, 1)
        assert pairwise_euclidean([Point(0, 0)], []).shape == (1, 0)

    @given(
        st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)), min_size=1, max_size=6),
        st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)), min_size=1, max_size=6),
    )
    def test_matches_scalar_euclidean(self, coords_a, coords_b):
        points_a = [Point(x, y) for x, y in coords_a]
        points_b = [Point(x, y) for x, y in coords_b]
        matrix = pairwise_euclidean(points_a, points_b)
        for i, pa in enumerate(points_a):
            for j, pb in enumerate(points_b):
                assert matrix[i, j] == pytest.approx(euclidean(pa, pb), abs=1e-9)
