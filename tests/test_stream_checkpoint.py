"""Tests for repro.stream.checkpoint — snapshot/resume bit-identity."""

import numpy as np
import pytest

from repro.assignment import MTAAssigner, NearestNeighborAssigner
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.exceptions import DataError
from repro.framework import WorkerArrival
from repro.geo import Point
from repro.stream import (
    AdaptiveTrigger,
    CountTrigger,
    StreamRuntime,
    TimeWindowTrigger,
    canonical_checkpoint_path,
    chunk_store_path,
    load_checkpoint,
    load_checkpoint_manifest,
    load_checkpoint_meta,
    log_from_arrivals,
    synthetic_stream,
)


def make_instance(tasks=(), current_time=0.0):
    return SCInstance(
        name="ckpt-test", current_time=current_time, tasks=list(tasks),
        workers=[], histories={}, social_edges=[],
        all_worker_ids=tuple(range(100)),
    )


def make_task(task_id, x, published=0.0, phi=5.0):
    return Task(
        task_id=task_id, location=Point(x, 0.0), publication_time=published,
        valid_hours=phi,
    )


def make_arrival(worker_id, x, at, radius=10.0):
    return WorkerArrival(
        worker=Worker(worker_id=worker_id, location=Point(x, 0.0),
                      reachable_km=radius, speed_kmh=5.0),
        arrival_time=at,
    )


def stream_world():
    tasks = [
        make_task(i, float(i % 4), published=float(i % 3), phi=6.0)
        for i in range(10)
    ]
    arrivals = [make_arrival(i, 0.4 * i, at=0.5 * i) for i in range(8)]
    return make_instance(tasks), log_from_arrivals(arrivals, tasks), tasks, arrivals


def pairs(result):
    return sorted(
        (p.worker.worker_id, p.task.task_id) for p in result.assignment.pairs
    )


def round_tuples(result):
    """Everything except wall-clock timings (which are not replayable)."""
    return [
        (r.index, r.time, r.online_workers, r.open_tasks, r.drained_events,
         r.assigned, r.expired_tasks, r.churned_workers, r.cancelled_tasks)
        for r in result.rounds
    ]


class TestCheckpointResume:
    @pytest.mark.parametrize("stop_after", [1, 3, 6])
    def test_window_trigger_resume_matches_uninterrupted(self, tmp_path, stop_after):
        base, log, _, _ = stream_world()
        uninterrupted = StreamRuntime(
            MTAAssigner(), None, TimeWindowTrigger(1.0), base, log
        ).run()
        first = StreamRuntime(
            MTAAssigner(), None, TimeWindowTrigger(1.0), base, log
        )
        first.run(max_rounds=stop_after)
        saved = first.checkpoint(tmp_path / "ck.npz")
        resumed = StreamRuntime.resume(
            saved, MTAAssigner(), None, TimeWindowTrigger(1.0), base, log
        )
        result = resumed.run()
        assert pairs(result) == pairs(uninterrupted)
        assert round_tuples(result) == round_tuples(uninterrupted)
        # Same replay order, so the histograms match bit-exactly — totals
        # included.
        assert (
            result.metrics.task_wait_histogram
            == uninterrupted.metrics.task_wait_histogram
        )
        assert (
            result.metrics.worker_wait_histogram
            == uninterrupted.metrics.worker_wait_histogram
        )

    def test_checkpoint_mid_batch_with_count_trigger(self, tmp_path):
        """Stop while the count trigger's next batch is partially admitted:
        events of the unfinished batch are unconsumed, pools carry
        leftovers — resume must still replay event-for-event."""
        base, log, _, _ = stream_world()
        uninterrupted = StreamRuntime(
            NearestNeighborAssigner(), None, CountTrigger(4), base, log
        ).run()
        first = StreamRuntime(
            NearestNeighborAssigner(), None, CountTrigger(4), base, log
        )
        first.run(max_rounds=2)
        assert not first.done
        assert 0 < first.cursor < len(log)  # genuinely mid-stream
        saved = first.checkpoint(tmp_path / "mid.npz")
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, CountTrigger(4), base, log
        )
        result = resumed.run()
        assert pairs(result) == pairs(uninterrupted)
        assert round_tuples(result) == round_tuples(uninterrupted)

    def test_checkpoint_before_any_round(self, tmp_path):
        base, log, _, _ = stream_world()
        uninterrupted = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log
        ).run()
        first = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log
        )
        first.run(max_rounds=0)  # started, nothing fired
        saved = first.checkpoint(tmp_path / "fresh.npz")
        result = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(2.0),
            base, log,
        ).run()
        assert round_tuples(result) == round_tuples(uninterrupted)

    def test_checkpoint_after_done_roundtrips(self, tmp_path):
        base, log, _, _ = stream_world()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log
        )
        finished = runtime.run()
        saved = runtime.checkpoint(tmp_path / "done.npz")
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, log,
        )
        assert resumed.done
        result = resumed.run()  # no-op
        assert pairs(result) == pairs(finished)

    def test_adaptive_trigger_state_restored(self, tmp_path):
        base, log, _, _ = stream_world()

        def trigger():
            return AdaptiveTrigger(
                target_seconds=3.0, initial_window_hours=1.0,
                min_window_hours=0.25, max_window_hours=4.0,
                cost_of=lambda record: float(record.open_tasks),
            )

        uninterrupted = StreamRuntime(
            NearestNeighborAssigner(), None, trigger(), base, log
        ).run()
        first = StreamRuntime(NearestNeighborAssigner(), None, trigger(), base, log)
        first.run(max_rounds=2)
        saved = first.checkpoint(tmp_path / "adaptive.npz")
        fresh_trigger = trigger()
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, fresh_trigger, base, log
        )
        assert fresh_trigger.window_hours == first.trigger.window_hours
        result = resumed.run()
        assert round_tuples(result) == round_tuples(uninterrupted)

    def test_rng_state_restored(self, tmp_path):
        base, log, _, _ = stream_world()
        rng = np.random.default_rng(7)
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
            rng=rng,
        )
        runtime.run(max_rounds=2)
        expected_draws = np.random.Generator(
            type(rng.bit_generator)()
        )  # placeholder, replaced below
        expected_draws.bit_generator.state = rng.bit_generator.state
        saved = runtime.checkpoint(tmp_path / "rng.npz")
        restored_rng = np.random.default_rng(999)  # wrong seed on purpose
        StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, log, rng=restored_rng,
        )
        np.testing.assert_array_equal(
            restored_rng.random(4), expected_draws.random(4)
        )

    def test_non_pcg64_rng_state_roundtrips(self, tmp_path):
        """Philox/SFC64 bit-generator state carries numpy arrays; the
        checkpoint's JSON meta must serialize and restore it exactly."""
        base, log, _, _ = stream_world()
        rng = np.random.Generator(np.random.Philox(7))
        rng.random(3)
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
            rng=rng,
        )
        runtime.run(max_rounds=1)
        reference = np.random.Generator(np.random.Philox())
        reference.bit_generator.state = rng.bit_generator.state
        saved = runtime.checkpoint(tmp_path / "philox.npz")
        restored_rng = np.random.Generator(np.random.Philox(123))
        StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, log, rng=restored_rng,
        )
        np.testing.assert_array_equal(restored_rng.random(4), reference.random(4))

    def test_synthetic_stream_with_churn_and_cancel(self, tmp_path):
        base, log = synthetic_stream(
            num_workers=60, num_tasks=60, duration_hours=12.0, area_km=30.0,
            churn_fraction=0.2, cancel_fraction=0.2, seed=13,
        )
        uninterrupted = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(0.5), base, log,
            patience_hours=3.0,
        ).run()
        first = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(0.5), base, log,
            patience_hours=3.0,
        )
        first.run(max_rounds=9)
        saved = first.checkpoint(tmp_path / "churny.npz")
        result = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(0.5),
            base, log, patience_hours=3.0,
        ).run()
        assert pairs(result) == pairs(uninterrupted)
        assert round_tuples(result) == round_tuples(uninterrupted)
        assert result.total_cancelled == uninterrupted.total_cancelled


class TestCheckpointValidation:
    def test_fingerprint_mismatch_rejected(self, tmp_path):
        base, log, tasks, arrivals = stream_world()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log
        )
        runtime.run(max_rounds=2)
        saved = runtime.checkpoint(tmp_path / "ck.npz")
        other_log = log_from_arrivals(arrivals[:-1], tasks)
        with pytest.raises(DataError, match="different event log"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, other_log,
            )

    def test_patience_mismatch_rejected(self, tmp_path):
        base, log, _, _ = stream_world()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
            patience_hours=2.0,
        )
        runtime.run(max_rounds=1)
        saved = runtime.checkpoint(tmp_path / "ck.npz")
        with pytest.raises(DataError, match="patience_hours"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, log, patience_hours=5.0,
            )

    def test_version_check(self, tmp_path, monkeypatch):
        base, log, _, _ = stream_world()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log
        )
        runtime.run(max_rounds=1)
        saved = runtime.checkpoint(tmp_path / "ck.npz")
        payload = load_checkpoint(saved)
        assert payload["meta"]["version"] == 7

        from repro.stream import checkpoint as checkpoint_module

        monkeypatch.setattr(checkpoint_module, "CHECKPOINT_VERSION", 999)
        bad = runtime.checkpoint(tmp_path / "bad.ckpt")
        monkeypatch.undo()
        with pytest.raises(DataError, match="version 999"):
            load_checkpoint(bad)

    def test_legacy_npz_rejected_with_clear_message(self, tmp_path):
        legacy = tmp_path / "old.npz"
        np.savez(legacy, meta=np.array("{}"))
        with pytest.raises(DataError, match="legacy npz"):
            load_checkpoint(legacy)

    def test_save_uses_canonical_ckpt_suffix(self, tmp_path):
        base, log, _, _ = stream_world()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log
        )
        runtime.run(max_rounds=1)
        saved = runtime.checkpoint(tmp_path / "bare")
        assert saved == canonical_checkpoint_path(tmp_path / "bare")
        assert saved.suffix == ".ckpt"
        assert saved.exists()
        # Save, load and resume all agree on the canonical path: the
        # bare path the user supplied works everywhere downstream.
        assert load_checkpoint_meta(tmp_path / "bare")["cursor"] == runtime.cursor
        resumed = StreamRuntime.resume(
            tmp_path / "bare",
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        )
        assert resumed.cursor == runtime.cursor
        # An explicit suffix is respected rather than rewritten.
        explicit = runtime.checkpoint(tmp_path / "other.npz")
        assert explicit == tmp_path / "other.npz"


def relocation_world(seed=61):
    """A multi-day synthetic world with relocation waves and churn."""
    return synthetic_stream(
        num_workers=50, num_tasks=60, duration_hours=8.0, days=3,
        area_km=12.0, valid_hours=3.0, reachable_km=5.0, clusters=3,
        relocate_fraction=0.5, overnight_churn_fraction=0.15, seed=seed,
    )


def admission_rounds(result):
    return [
        (r.index, r.relocated_workers, r.deferred_tasks, r.shed_tasks)
        for r in result.rounds
    ]


class TestAdaptiveTriggerUnderRelocationAndAdmission:
    """Satellite: adaptive windows + admission + relocation across resume.

    The adaptive trigger's feedback and the admission controller's cost
    both run off a deterministic function of the round record, so the
    whole control loop — window halving/growth, overload flips, backlog
    release — must replay bit-identically through a checkpoint.
    """

    @staticmethod
    def _trigger():
        # Deterministic feedback: pretend every pooled task costs 20 ms.
        return AdaptiveTrigger(
            target_seconds=0.4, initial_window_hours=1.0,
            min_window_hours=0.25, max_window_hours=4.0,
            cost_of=lambda record: 0.02 * record.open_tasks,
        )

    @staticmethod
    def _admission():
        from repro.stream import AdmissionController

        return AdmissionController(
            budget_seconds=0.2, policy="defer",
            cost_of=lambda record: 0.05 * record.open_tasks,
        )

    def _runtime(self, base, log):
        return StreamRuntime(
            NearestNeighborAssigner(), None, self._trigger(), base, log,
            admission=self._admission(),
        )

    def test_resume_matches_uninterrupted(self, tmp_path):
        base, log = relocation_world()
        full = self._runtime(base, log).run()
        assert full.metrics.total_relocated > 0
        assert full.metrics.total_deferred > 0

        interrupted = self._runtime(base, log)
        interrupted.run(max_rounds=max(2, len(full.rounds) // 2))
        saved = interrupted.checkpoint(tmp_path / "adaptive-admission.npz")
        resumed_runtime = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, self._trigger(), base, log,
            admission=self._admission(),
        )
        resumed = resumed_runtime.run()
        assert pairs(resumed) == pairs(full)
        assert round_tuples(resumed) == round_tuples(full)
        assert admission_rounds(resumed) == admission_rounds(full)

    def test_trigger_and_admission_state_survive_the_round_trip(self, tmp_path):
        base, log = relocation_world(seed=67)
        runtime = self._runtime(base, log)
        runtime.run(max_rounds=8)
        window_before = runtime.trigger.window_hours
        overloaded_before = runtime.admission.overloaded
        backlog_before = sorted(runtime.admission._backlog.items())
        saved = runtime.checkpoint(tmp_path / "state.npz")

        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, self._trigger(), base, log,
            admission=self._admission(),
        )
        assert resumed.trigger.window_hours == window_before
        assert resumed.admission.overloaded == overloaded_before
        assert sorted(resumed.admission._backlog.items()) == backlog_before
        assert resumed.admission.total_deferred == runtime.admission.total_deferred

    def test_admission_mismatch_rejected(self, tmp_path):
        from repro.stream import AdmissionController

        base, log = relocation_world(seed=71)
        runtime = self._runtime(base, log)
        runtime.run(max_rounds=3)
        saved = runtime.checkpoint(tmp_path / "adm.npz")
        with pytest.raises(DataError, match="admission"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, self._trigger(),
                base, log,
            )
        with pytest.raises(DataError, match="policy"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, self._trigger(),
                base, log,
                admission=AdmissionController(
                    budget_seconds=0.2, policy="shed",
                    cost_of=lambda record: 0.05 * record.open_tasks,
                ),
            )
        with pytest.raises(DataError, match="budget"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, self._trigger(),
                base, log,
                admission=AdmissionController(
                    budget_seconds=0.8, policy="defer",
                    cost_of=lambda record: 0.05 * record.open_tasks,
                ),
            )

    def test_unaffected_checkpoint_rejects_admission_resume(self, tmp_path):
        base, log = relocation_world(seed=73)
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        )
        plain.run(max_rounds=3)
        saved = plain.checkpoint(tmp_path / "plain.npz")
        with pytest.raises(DataError, match="admission"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, log, admission=self._admission(),
            )


class TestRelocatedPoolRoundTrip:
    """Pools holding relocated workers snapshot and restore exactly."""

    def test_relocated_worker_survives_resume(self, tmp_path):
        from repro.stream import WorkerArrivalEvent, WorkerRelocateEvent
        from repro.stream.events import EventLog, expiry_events
        from repro.stream import TaskPublishEvent

        worker = Worker(worker_id=1, location=Point(0.0, 0.0), reachable_km=4.0)
        far_task = make_task(0, 30.0, published=5.0, phi=4.0)
        log = EventLog([
            WorkerArrivalEvent(time=0.0, worker=worker),
            WorkerRelocateEvent(time=2.0, worker_id=1, location=Point(29.0, 0.0)),
            TaskPublishEvent(time=5.0, task=far_task),
            *expiry_events([far_task]),
        ])
        base = make_instance()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        )
        runtime.run(max_rounds=4)  # past the relocation, before the publish
        assert runtime.state.workers[1].location.x == 29.0
        saved = runtime.checkpoint(tmp_path / "reloc.npz")

        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, log,
        )
        assert resumed.state.workers[1].location.x == 29.0
        result = resumed.run()
        # Only the relocated position makes the far task reachable.
        assert pairs(result) == [(1, 0)]


class TestChunkedFormat:
    """v5 manifest + content-addressed chunk store behavior."""

    def _multiday_runtime(self):
        base, log = relocation_world()
        return StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        )

    def test_successive_snapshots_share_chunks(self, tmp_path):
        runtime = self._multiday_runtime()
        runtime.run(max_rounds=16)
        from repro.stream.checkpoint import save_checkpoint

        first = save_checkpoint(runtime, tmp_path / "a.ckpt", chunk_bytes=64)
        runtime.run(max_rounds=2)
        second = save_checkpoint(runtime, tmp_path / "b.ckpt", chunk_bytes=64)

        before = set(load_checkpoint_manifest(first)["digests"])
        after = set(load_checkpoint_manifest(second)["digests"])
        shared = len(before & after) / len(after)
        # The append-mostly metrics/pool arrays keep their chunk prefixes,
        # so a periodic snapshot re-uses at least half of its chunks.
        assert shared >= 0.5, f"only {shared:.0%} of chunks shared"
        # ... and the shared store holds each chunk exactly once.
        store = chunk_store_path(first)
        assert store == chunk_store_path(second)
        on_disk = {p.stem for p in store.glob("*.chunk")}
        assert (before | after) <= on_disk

    def test_resume_equals_uninterrupted_with_small_chunks(self, tmp_path):
        base, log = relocation_world()
        full = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        ).run()

        runtime = self._multiday_runtime()
        runtime.run(max_rounds=7)
        from repro.stream.checkpoint import save_checkpoint

        saved = save_checkpoint(runtime, tmp_path / "mid", chunk_bytes=256)
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, log,
        )
        result = resumed.run()
        assert pairs(result) == pairs(full)
        assert round_tuples(result) == round_tuples(full)

    def test_manifest_meta_matches_load(self, tmp_path):
        runtime = self._multiday_runtime()
        runtime.run(max_rounds=3)
        saved = runtime.checkpoint(tmp_path / "m.ckpt")
        manifest = load_checkpoint_manifest(saved)
        assert manifest["meta"] == load_checkpoint_meta(saved)
        names = {entry["name"] for entry in manifest["arrays"]}
        assert "pool_worker_events" in names
        assert "metrics_rounds" in names
        # Array bytes round-trip exactly through the chunk store.
        payload = load_checkpoint(saved)
        for entry in manifest["arrays"]:
            assert list(payload[entry["name"]].shape) == entry["shape"]

    def test_missing_chunk_detected(self, tmp_path):
        runtime = self._multiday_runtime()
        runtime.run(max_rounds=3)
        saved = runtime.checkpoint(tmp_path / "m.ckpt")
        victim = next(iter(chunk_store_path(saved).glob("*.chunk")))
        victim.unlink()
        with pytest.raises(DataError, match="missing"):
            load_checkpoint(saved)

    def test_corrupt_chunk_detected(self, tmp_path):
        runtime = self._multiday_runtime()
        runtime.run(max_rounds=3)
        saved = runtime.checkpoint(tmp_path / "m.ckpt")
        victim = max(
            chunk_store_path(saved).glob("*.chunk"),
            key=lambda p: p.stat().st_size,
        )
        blob = bytearray(victim.read_bytes())
        blob[0] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(DataError, match="corrupt checkpoint chunk"):
            load_checkpoint(saved)

    def test_corrupt_manifest_detected(self, tmp_path):
        runtime = self._multiday_runtime()
        runtime.run(max_rounds=3)
        saved = runtime.checkpoint(tmp_path / "m.ckpt")
        blob = bytearray(saved.read_bytes())
        blob[-1] ^= 0xFF
        saved.write_bytes(bytes(blob))
        with pytest.raises(DataError, match="hash mismatch"):
            load_checkpoint_meta(saved)


def rewrite_meta(path, mutate):
    """Re-publish a manifest with a mutated meta dict (valid trailer)."""
    import hashlib
    import json

    from repro.stream import checkpoint as cp

    blob = path.read_bytes()
    magic, version, flags, meta_len, index_len, digest_count = (
        cp._MANIFEST_HEADER.unpack_from(blob)
    )
    offset = cp._MANIFEST_HEADER.size
    meta = json.loads(blob[offset:offset + meta_len].decode("utf-8"))
    mutate(meta)
    meta_blob = json.dumps(meta).encode("utf-8")
    rest = blob[offset + meta_len:len(blob) - cp._DIGEST_BYTES]
    header = cp._MANIFEST_HEADER.pack(
        magic, version, flags, len(meta_blob), index_len, digest_count
    )
    body = header + meta_blob + rest
    path.write_bytes(body + hashlib.sha256(body).digest())


class TestHistogramStateInMeta:
    """v6: the wait histograms persist in the manifest meta, not the chunks."""

    def _interrupted(self, tmp_path):
        base, log = relocation_world()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        )
        runtime.run(max_rounds=7)
        assert runtime.result.metrics.task_wait_histogram.count > 0
        return base, log, runtime.checkpoint(tmp_path / "hist.ckpt")

    def test_wait_histograms_live_in_meta_only(self, tmp_path):
        _, _, saved = self._interrupted(tmp_path)
        manifest = load_checkpoint_manifest(saved)
        meta = manifest["meta"]
        assert meta["version"] == 7
        assert meta["metrics"]["task_waits"]["count"] > 0
        assert meta["metrics"]["worker_waits"]["count"] > 0
        # The unbounded per-sample wait arrays of v5 and earlier are gone.
        names = {entry["name"] for entry in manifest["arrays"]}
        assert not any("wait" in name for name in names)

    def test_histogram_config_mismatch_rejected(self, tmp_path):
        base, log, saved = self._interrupted(tmp_path)

        def shrink_buckets(meta):
            meta["metrics"]["task_waits"]["buckets_per_decade"] = 8

        rewrite_meta(saved, shrink_buckets)
        with pytest.raises(DataError, match="bucket configuration mismatch"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, log,
            )


class TestAtomicSave:
    """A failure at any point mid-save leaves the previous snapshot intact."""

    def _snapshot_then_fail(self, tmp_path, monkeypatch, fail_when):
        base, log = relocation_world()
        full = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        ).run()

        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        )
        runtime.run(max_rounds=5)
        target = tmp_path / "ck.ckpt"
        saved = runtime.checkpoint(target)
        good_bytes = saved.read_bytes()
        good_chunks = {
            p.name: p.read_bytes() for p in chunk_store_path(saved).glob("*.chunk")
        }

        runtime.run(max_rounds=3)
        import repro.ioutil as ioutil

        real_replace = ioutil.os.replace

        def exploding_replace(src, dst):
            if fail_when(str(dst)):
                raise OSError("disk full (injected)")
            return real_replace(src, dst)

        monkeypatch.setattr(ioutil.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="injected"):
            runtime.checkpoint(target)
        monkeypatch.undo()

        # The previous manifest is byte-identical, its chunks untouched,
        # and no temp files are left behind next to it.
        assert saved.read_bytes() == good_bytes
        for name, blob in good_chunks.items():
            assert (chunk_store_path(saved) / name).read_bytes() == blob
        assert not list(tmp_path.glob(".*.tmp"))

        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, log,
        )
        result = resumed.run()
        assert pairs(result) == pairs(full)

    def test_failure_replacing_manifest(self, tmp_path, monkeypatch):
        self._snapshot_then_fail(
            tmp_path, monkeypatch, lambda dst: dst.endswith(".ckpt")
        )

    def test_failure_writing_a_chunk(self, tmp_path, monkeypatch):
        self._snapshot_then_fail(
            tmp_path, monkeypatch, lambda dst: dst.endswith(".chunk")
        )
