"""Golden regression fixtures for the flow-substrate rewrite.

``tests/golden/flow_golden.json`` freezes the assignment outputs of
``MTAAssigner(engine="flow")`` and ``solve_lexicographic_mcmf`` on three
seeded end-to-end instances (synthetic dataset -> day instance ->
feasibility -> solver), captured with the *pre-rewrite* object-graph
solvers.  The array-native core must reproduce them bit-identically.

Determinism notes: the Dinic rewrite keeps the exact current-arc discipline
of the old recursive solver over the same per-node edge order (CSR is
stable-sorted by insertion), so the max-flow matching is unchanged pair for
pair.  The MCMF instances use continuous distance costs, but co-located
workers (same venue) create exact cost ties, so the optimal *pair set* is
not unique; the general solver's tie-breaking changed with the rewrite
(SPFA relaxation order -> frontier-scan order).  The regression contract is
therefore: objective values (cardinality and total cost) bit-stable for
every engine, pair sets bit-stable per engine (each engine is
deterministic), and the bipartite substrate engine pinned pair-for-pair to
the frozen fixtures.
"""

import json
from pathlib import Path

import pytest

from repro import InstanceBuilder, SyntheticConfig, generate_dataset
from repro.assignment import MTAAssigner, PreparedInstance
from repro.assignment.solvers import (
    solve_lexicographic_mcmf,
    solve_lexicographic_substrate,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "flow_golden.json"

CONFIGS = {
    "golden-a": dict(
        name="golden-a", num_users=40, num_venues=30, num_days=10, area_km=25.0,
        num_clusters=3, ba_attachment=2, mean_checkins_per_user_day=2.0,
        active_probability=0.7, seed=5,
    ),
    "golden-b": dict(
        name="golden-b", num_users=55, num_venues=35, num_days=10, area_km=35.0,
        num_clusters=4, ba_attachment=2, mean_checkins_per_user_day=1.5,
        active_probability=0.6, seed=17,
    ),
    "golden-c": dict(
        name="golden-c", num_users=70, num_venues=45, num_days=10, area_km=30.0,
        num_clusters=5, ba_attachment=3, mean_checkins_per_user_day=2.5,
        active_probability=0.8, seed=29,
    ),
}


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def _prepare(config_name):
    dataset = generate_dataset(SyntheticConfig(**CONFIGS[config_name]))
    builder = InstanceBuilder(dataset, valid_hours=5.0, reachable_km=20.0)
    instance = builder.build_day(day=5)
    return PreparedInstance(instance)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
class TestGoldenFixtures:
    def test_instance_shape_unchanged(self, config_name, golden):
        """The end-to-end instance itself must rebuild identically."""
        expected = golden[config_name]
        feasible = _prepare(config_name).feasible
        assert len(feasible.workers) == expected["num_workers"]
        assert len(feasible.tasks) == expected["num_tasks"]
        assert feasible.num_feasible == expected["num_feasible"]

    def test_mta_flow_pairs_bit_identical(self, config_name, golden):
        expected = [tuple(pair) for pair in golden[config_name]["mta_pairs"]]
        prepared = _prepare(config_name)
        assignment = MTAAssigner(engine="flow").assign(prepared)
        pairs = sorted((p.worker.worker_id, p.task.task_id) for p in assignment)
        assert pairs == expected

    def test_mcmf_objective_bit_stable(self, config_name, golden):
        expected = [tuple(pair) for pair in golden[config_name]["mcmf_pairs"]]
        expected_cost = float(golden[config_name]["mcmf_total_cost"])
        feasible = _prepare(config_name).feasible
        cost = feasible.distance_km
        pairs = sorted(solve_lexicographic_mcmf(cost, feasible.mask))
        assert len(pairs) == len(expected)
        total = sum(cost[row, column] for row, column in pairs)
        assert total == pytest.approx(expected_cost, abs=1e-12)
        # The engine itself is deterministic: re-solving returns the same
        # pairs, and every pair is feasible and one-to-one.
        assert pairs == sorted(solve_lexicographic_mcmf(cost, feasible.mask))
        assert all(feasible.mask[row, column] for row, column in pairs)
        assert len({row for row, _ in pairs}) == len(pairs)
        assert len({column for _, column in pairs}) == len(pairs)

    def test_substrate_matches_golden_optimum(self, config_name, golden):
        """The bipartite fast path lands on the same (unique) optimum."""
        expected = [tuple(pair) for pair in golden[config_name]["mcmf_pairs"]]
        feasible = _prepare(config_name).feasible
        pairs = sorted(
            solve_lexicographic_substrate(feasible.distance_km, feasible.mask)
        )
        assert pairs == expected
