"""Tests for the category taxonomy."""

import pytest

from repro.data.categories import (
    CATEGORY_TAXONOMY,
    all_categories,
    category_group,
    group_names,
)


class TestTaxonomy:
    def test_nine_groups_like_foursquare(self):
        assert len(CATEGORY_TAXONOMY) == 9

    def test_no_duplicate_leaves(self):
        leaves = all_categories()
        assert len(leaves) == len(set(leaves))

    def test_reasonable_vocabulary_size(self):
        assert 60 <= len(all_categories()) <= 150

    def test_category_group_roundtrip(self):
        for group, leaves in CATEGORY_TAXONOMY.items():
            for leaf in leaves:
                assert category_group(leaf) == group

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            category_group("warp_gate")

    def test_group_names_sorted(self):
        names = group_names()
        assert list(names) == sorted(names)
        assert set(names) == set(CATEGORY_TAXONOMY)

    def test_all_categories_deterministic(self):
        assert all_categories() == all_categories()
