"""Tests for the RPO algorithm (Algorithm 1) and its bounds."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.propagation import RPO, SocialGraph


@pytest.fixture()
def medium_graph(rng):
    """A 40-node preferential-attachment-ish graph."""
    import networkx as nx

    g = nx.barabasi_albert_graph(40, 2, seed=11)
    return SocialGraph(range(40), list(g.edges()))


class TestRPOConfiguration:
    def test_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            RPO(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            RPO(epsilon=1.0)

    def test_o_validated(self):
        with pytest.raises(ConfigurationError):
            RPO(o=0.0)

    def test_max_sets_validated(self):
        with pytest.raises(ConfigurationError):
            RPO(max_sets=0)

    def test_epsilon_star_is_sqrt2_epsilon(self):
        rpo = RPO(epsilon=0.1)
        assert rpo.epsilon_star == pytest.approx(math.sqrt(2) * 0.1)


class TestBounds:
    def test_iteration_bound_formula(self):
        rpo = RPO(epsilon=0.1, o=1.0)
        n, k = 100, 50.0
        eps = rpo.epsilon_star
        lambda_star = 1.0 / (n * math.log2(n))
        expected = math.ceil(
            (2 + 2 * eps / 3) * (math.log(n) + math.log(1 / lambda_star)) * n / (eps**2 * k)
        )
        assert rpo.iteration_bound(n, k) == expected

    def test_iteration_bound_decreases_in_k(self):
        rpo = RPO(epsilon=0.1)
        assert rpo.iteration_bound(100, 50) < rpo.iteration_bound(100, 10)

    def test_iteration_bound_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            RPO().iteration_bound(100, 0)

    def test_threshold_bound_formula(self):
        rpo = RPO(epsilon=0.1, o=1.0)
        n, sigma_lb = 100, 10.0
        expected = math.ceil(2 * n * math.log(n) / (sigma_lb * 0.01))
        assert rpo.threshold_bound(n, sigma_lb) == expected

    def test_threshold_bound_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            RPO().threshold_bound(100, 0.0)

    def test_threshold_bound_decreases_in_sigma(self):
        rpo = RPO()
        assert rpo.threshold_bound(100, 20.0) < rpo.threshold_bound(100, 2.0)


class TestRPORun:
    def test_run_produces_sets(self, medium_graph):
        result = RPO(epsilon=0.3, max_sets=20_000, seed=1).run(medium_graph)
        assert len(result.collection) > 0
        assert result.sigma_lower_bound >= 1.0
        assert result.threshold_bound >= 1

    def test_run_deterministic(self, medium_graph):
        a = RPO(epsilon=0.3, max_sets=5_000, seed=3).run(medium_graph)
        b = RPO(epsilon=0.3, max_sets=5_000, seed=3).run(medium_graph)
        assert len(a.collection) == len(b.collection)
        np.testing.assert_array_equal(a.collection.roots, b.collection.roots)

    def test_truncation_flag_set_when_capped(self, medium_graph):
        result = RPO(epsilon=0.1, max_sets=100, seed=1).run(medium_graph)
        assert result.truncated
        assert len(result.collection) <= 100

    def test_generates_at_least_threshold_bound_when_uncapped(self, medium_graph):
        result = RPO(epsilon=0.4, max_sets=500_000, seed=2).run(medium_graph)
        assert len(result.collection) >= min(result.threshold_bound, 500_000)

    def test_estimates_close_to_monte_carlo(self):
        """End-to-end: RPO's collection estimates sigma within tolerance."""
        from repro.propagation import estimate_spread

        graph = SocialGraph(range(6), [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)])
        result = RPO(epsilon=0.15, max_sets=300_000, seed=5).run(graph)
        for node in range(6):
            mc = estimate_spread(graph, node, runs=20_000, seed=6)
            assert result.collection.sigma(node) == pytest.approx(mc, rel=0.15), node

    def test_small_graph_terminates(self):
        graph = SocialGraph([0, 1], [(0, 1)])
        result = RPO(epsilon=0.5, max_sets=10_000, seed=7).run(graph)
        assert len(result.collection) > 0
