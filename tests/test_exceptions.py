"""Tests for the exception hierarchy and the 'own' simulator scoring path."""

import pytest

from repro import Simulator
from repro.assignment import IAAssigner, MTAAssigner
from repro.exceptions import (
    AssignmentError,
    ConfigurationError,
    DataError,
    FlowError,
    GraphError,
    NotFittedError,
    ReproError,
)
from repro.influence import InfluenceComponents


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, DataError, NotFittedError, GraphError,
        FlowError, AssignmentError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_flow_error_is_graph_error(self):
        """Flow networks are graphs; a single except GraphError catches both."""
        assert issubclass(FlowError, GraphError)

    def test_catching_base_does_not_catch_unrelated(self):
        with pytest.raises(ValueError):
            try:
                raise ValueError("not ours")
            except ReproError:  # pragma: no cover - must not trigger
                pytest.fail("ReproError must not catch ValueError")


class TestSimulatorOwnScoring:
    def test_own_scoring_uses_ablated_model(self, tiny_instance, fitted_models):
        """With scoring_model='own', an ablated run is scored by its own
        (ablated) influence — so its AI differs from full-model scoring."""
        ablated = fitted_models.influence_model(
            InfluenceComponents.without_affinity()
        )
        full = fitted_models.influence_model()
        own = Simulator(scoring_model="own").run_instance(
            tiny_instance, [IAAssigner()],
            influence_model=ablated, full_model=full,
        )[0]
        scored_full = Simulator(scoring_model="full").run_instance(
            tiny_instance, [IAAssigner()],
            influence_model=ablated, full_model=full,
        )[0]
        assert own.num_assigned == scored_full.num_assigned
        assert own.average_influence != pytest.approx(
            scored_full.average_influence
        )

    def test_mta_identical_under_either_scoring_model(
        self, tiny_instance, fitted_models
    ):
        """MTA ignores influence for assignment, so only the metric scale
        changes — cardinality must match exactly."""
        full = fitted_models.influence_model()
        for mode in ("full", "own"):
            result = Simulator(scoring_model=mode).run_instance(
                tiny_instance, [MTAAssigner()],
                influence_model=full, full_model=full,
            )[0]
            assert result.num_assigned > 0
