"""Tests for repro.geo.grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import GridIndex, Point


class TestGridIndex:
    def test_insert_and_len(self):
        grid = GridIndex(cell_size_km=1.0)
        grid.insert(Point(0.5, 0.5), "a")
        grid.insert(Point(5.0, 5.0), "b")
        assert len(grid) == 2

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size_km=0.0)

    def test_rejects_negative_radius(self):
        grid = GridIndex(cell_size_km=1.0)
        with pytest.raises(ValueError):
            list(grid.query_radius(Point(0, 0), -1.0))

    def test_query_radius_includes_border(self):
        grid = GridIndex(cell_size_km=1.0)
        grid.insert(Point(3.0, 0.0), "edge")
        hits = list(grid.query_radius(Point(0, 0), 3.0))
        assert [item for _, item in hits] == ["edge"]

    def test_query_radius_excludes_outside(self):
        grid = GridIndex(cell_size_km=1.0)
        grid.insert(Point(3.01, 0.0), "outside")
        assert list(grid.query_radius(Point(0, 0), 3.0)) == []

    def test_insert_many_and_items(self):
        grid = GridIndex(cell_size_km=2.0)
        pairs = [(Point(float(i), 0.0), i) for i in range(5)]
        grid.insert_many(pairs)
        assert sorted(item for _, item in grid.items()) == [0, 1, 2, 3, 4]

    def test_negative_coordinates(self):
        grid = GridIndex(cell_size_km=1.0)
        grid.insert(Point(-5.5, -5.5), "neg")
        hits = list(grid.query_radius(Point(-5.0, -5.0), 1.0))
        assert [item for _, item in hits] == ["neg"]

    @settings(max_examples=30)
    @given(
        st.lists(st.tuples(st.floats(-50, 50), st.floats(-50, 50)), min_size=0, max_size=40),
        st.floats(-40, 40), st.floats(-40, 40), st.floats(0, 30),
        st.floats(0.5, 10),
    )
    def test_matches_brute_force(self, coords, cx, cy, radius, cell):
        grid = GridIndex(cell_size_km=cell)
        for index, (x, y) in enumerate(coords):
            grid.insert(Point(x, y), index)
        center = Point(cx, cy)
        expected = {
            i for i, (x, y) in enumerate(coords)
            if Point(x, y).distance_to(center) <= radius
        }
        got = {item for _, item in grid.query_radius(center, radius)}
        assert got == expected


class TestGridIndexRemoval:
    def test_remove_deletes_one_entry(self):
        grid = GridIndex(cell_size_km=1.0)
        grid.insert(Point(0.5, 0.5), "a")
        grid.insert(Point(0.5, 0.5), "b")
        grid.remove(Point(0.5, 0.5), "a")
        assert len(grid) == 1
        assert [item for _, item in grid.items()] == ["b"]

    def test_remove_missing_raises(self):
        grid = GridIndex(cell_size_km=1.0)
        grid.insert(Point(0.5, 0.5), "a")
        with pytest.raises(KeyError):
            grid.remove(Point(0.5, 0.5), "zzz")
        with pytest.raises(KeyError):
            grid.remove(Point(9.5, 9.5), "a")  # wrong bucket

    def test_remove_then_query_consistent(self):
        grid = GridIndex(cell_size_km=2.0)
        for index in range(6):
            grid.insert(Point(float(index), 0.0), index)
        grid.remove(Point(2.0, 0.0), 2)
        grid.remove(Point(3.0, 0.0), 3)
        hits = sorted(item for _, item in grid.query_radius(Point(0.0, 0.0), 10.0))
        assert hits == [0, 1, 4, 5]
        assert len(grid) == 4

    def test_remove_duplicate_pairs_one_at_a_time(self):
        grid = GridIndex(cell_size_km=1.0)
        grid.insert(Point(0.0, 0.0), "dup")
        grid.insert(Point(0.0, 0.0), "dup")
        grid.remove(Point(0.0, 0.0), "dup")
        assert len(grid) == 1
        grid.remove(Point(0.0, 0.0), "dup")
        assert len(grid) == 0

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=30),
           st.data())
    def test_insert_remove_random_matches_multiset(self, items, data):
        grid = GridIndex(cell_size_km=1.5)
        alive = []
        for item in items:
            point = Point(float(item % 5), float(item % 3))
            grid.insert(point, item)
            alive.append((point, item))
        removals = data.draw(st.integers(0, len(alive)))
        for _ in range(removals):
            index = data.draw(st.integers(0, len(alive) - 1))
            point, item = alive.pop(index)
            grid.remove(point, item)
        assert sorted(item for _, item in grid.items()) == sorted(
            item for _, item in alive
        )
