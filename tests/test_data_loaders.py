"""Tests for the SNAP-format loaders."""

import pytest

from repro.data.loaders import (
    load_dataset_from_snap,
    load_snap_checkins,
    load_snap_edges,
    load_venue_categories,
)
from repro.exceptions import DataError


EDGES = """\
# comment line
0\t1
1\t2

2\t3
"""

CHECKINS = """\
0\t2010-10-17T01:48:53Z\t39.747652\t-104.992510\tv_a
0\t2010-10-16T06:02:04Z\t39.891383\t-105.070814\tv_b
1\t2010-10-17T03:48:53Z\t39.750000\t-104.990000\tv_a
2\t2010-10-18T12:00:00Z\t39.800000\t-105.000000\tv_c
3\t2010-10-18T13:00:00Z\t39.810000\t-105.010000\tv_c
"""

CATEGORIES = """\
v_a\tcafe,bakery
v_b\tbar
# comment
v_c\tpark
"""


@pytest.fixture()
def snap_files(tmp_path):
    edges = tmp_path / "edges.txt"
    checkins = tmp_path / "checkins.txt"
    categories = tmp_path / "categories.txt"
    edges.write_text(EDGES)
    checkins.write_text(CHECKINS)
    categories.write_text(CATEGORIES)
    return edges, checkins, categories


class TestLoadEdges:
    def test_parses_and_skips_comments(self, snap_files):
        edges, _, _ = snap_files
        assert load_snap_edges(edges) == [(0, 1), (1, 2), (2, 3)]

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\t1\n0 1 2\n")
        with pytest.raises(DataError, match=":2"):
            load_snap_edges(path)

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a\tb\n")
        with pytest.raises(DataError):
            load_snap_edges(path)


class TestLoadCheckins:
    def test_basic_parse(self, snap_files):
        _, checkins_path, _ = snap_files
        checkins, venues, key_map = load_snap_checkins(checkins_path)
        assert len(checkins) == 5
        assert set(key_map) == {"v_a", "v_b", "v_c"}
        assert len(venues) == 3

    def test_times_relative_and_nonnegative(self, snap_files):
        _, checkins_path, _ = snap_files
        checkins, _, _ = load_snap_checkins(checkins_path)
        times = [c.time for c in checkins]
        assert min(times) == pytest.approx(0.0)
        assert max(times) > 24.0

    def test_projection_locally_accurate(self, snap_files):
        _, checkins_path, _ = snap_files
        _, venues, key_map = load_snap_checkins(checkins_path)
        # v_a and v_b are ~17-18 km apart in reality.
        a = venues[key_map["v_a"]].location
        b = venues[key_map["v_b"]].location
        assert 10.0 < a.distance_to(b) < 25.0

    def test_categories_attached(self, snap_files):
        _, checkins_path, categories_path = snap_files
        categories = load_venue_categories(categories_path)
        checkins, venues, key_map = load_snap_checkins(checkins_path, categories)
        assert venues[key_map["v_a"]].categories == ("cafe", "bakery")
        assert venues[key_map["v_b"]].categories == ("bar",)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(DataError):
            load_snap_checkins(path)

    def test_short_line_raises(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("0\t2010-10-17T01:48:53Z\t39.7\n")
        with pytest.raises(DataError):
            load_snap_checkins(path)


class TestLoadDataset:
    def test_assembles_dataset(self, snap_files):
        edges, checkins, categories = snap_files
        ds = load_dataset_from_snap("bk-test", edges, checkins, categories)
        assert ds.name == "bk-test"
        assert ds.num_users == 4
        assert ds.num_checkins == 5
        # All users have check-ins, so all edges survive.
        assert len(ds.social_edges) == 3

    def test_drops_edges_of_users_without_checkins(self, tmp_path, snap_files):
        _, checkins, _ = snap_files
        edges = tmp_path / "edges2.txt"
        edges.write_text("0\t1\n0\t99\n")
        ds = load_dataset_from_snap("bk-test", edges, checkins)
        assert ds.social_edges == [(0, 1)]
