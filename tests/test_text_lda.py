"""Tests for the from-scratch LDA implementations.

Both engines are checked on a corpus with two *perfectly separable* topics:
documents are drawn either from vocabulary {a, b, c} or from {x, y, z}.  A
correct topic model must (1) produce valid probability simplexes and
(2) place same-topic documents closer to each other than to the other
group, and assign unseen documents correctly.
"""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.text import GibbsLDA, VariationalLDA


def two_topic_corpus(rng: np.random.Generator, docs_per_topic: int = 12, doc_len: int = 30):
    topic_a = ["alpha", "beta", "gamma"]
    topic_b = ["xray", "yankee", "zulu"]
    documents = []
    for _ in range(docs_per_topic):
        documents.append(list(rng.choice(topic_a, size=doc_len)))
    for _ in range(docs_per_topic):
        documents.append(list(rng.choice(topic_b, size=doc_len)))
    return documents


@pytest.fixture(params=["gibbs", "variational"])
def engine_factory(request):
    # alpha is set explicitly: the 50/K default heuristic targets K ~ 50 and
    # oversmooths two-topic toy corpora.
    if request.param == "gibbs":
        return lambda **kw: GibbsLDA(num_topics=kw.get("num_topics", 2), alpha=0.1,
                                     iterations=150, seed=kw.get("seed", 3))
    return lambda **kw: VariationalLDA(num_topics=kw.get("num_topics", 2), alpha=0.1,
                                       seed=kw.get("seed", 3))


class TestLDACommon:
    def test_rejects_bad_topic_count(self):
        with pytest.raises(ValueError):
            GibbsLDA(num_topics=0)
        with pytest.raises(ValueError):
            VariationalLDA(num_topics=-1)

    def test_unfitted_infer_raises(self, engine_factory):
        model = engine_factory()
        with pytest.raises(NotFittedError):
            model.infer(["alpha"])

    def test_distributions_are_simplexes(self, engine_factory, rng):
        model = engine_factory().fit(two_topic_corpus(rng))
        assert model.doc_topic_ is not None and model.topic_word_ is not None
        np.testing.assert_allclose(model.doc_topic_.sum(axis=1), 1.0, rtol=1e-6)
        np.testing.assert_allclose(model.topic_word_.sum(axis=1), 1.0, rtol=1e-6)
        assert (model.doc_topic_ >= 0).all()
        assert (model.topic_word_ >= 0).all()

    def test_separates_two_topics(self, engine_factory, rng):
        docs = two_topic_corpus(rng)
        model = engine_factory().fit(docs)
        theta = model.doc_topic_
        group_a = theta[:12].mean(axis=0)
        group_b = theta[12:].mean(axis=0)
        # The dominant topic of group A must differ from group B's.
        assert int(np.argmax(group_a)) != int(np.argmax(group_b))
        # And the separation should be strong.
        assert group_a.max() > 0.8 and group_b.max() > 0.8

    def test_infer_assigns_unseen_docs_to_right_topic(self, engine_factory, rng):
        docs = two_topic_corpus(rng)
        model = engine_factory().fit(docs)
        theta_a = model.infer(["alpha", "beta", "alpha", "gamma"] * 4)
        theta_b = model.infer(["zulu", "xray", "yankee", "zulu"] * 4)
        assert int(np.argmax(theta_a)) != int(np.argmax(theta_b))
        topic_of_a = int(np.argmax(model.doc_topic_[0]))
        assert int(np.argmax(theta_a)) == topic_of_a

    def test_infer_empty_doc_is_uniform(self, engine_factory, rng):
        model = engine_factory().fit(two_topic_corpus(rng))
        theta = model.infer([])
        np.testing.assert_allclose(theta, 0.5, atol=1e-9)

    def test_infer_oov_only_doc_is_uniform(self, engine_factory, rng):
        model = engine_factory().fit(two_topic_corpus(rng))
        theta = model.infer(["not-in-vocabulary"])
        np.testing.assert_allclose(theta, 0.5, atol=1e-9)

    def test_infer_returns_simplex(self, engine_factory, rng):
        model = engine_factory().fit(two_topic_corpus(rng))
        theta = model.infer(["alpha", "zulu"])
        assert theta.sum() == pytest.approx(1.0)
        assert (theta >= 0).all()

    def test_deterministic_given_seed(self, engine_factory, rng):
        docs = two_topic_corpus(rng)
        a = engine_factory(seed=9).fit(docs)
        b = engine_factory(seed=9).fit(docs)
        np.testing.assert_allclose(a.doc_topic_, b.doc_topic_)
        np.testing.assert_allclose(a.topic_word_, b.topic_word_)

    def test_perplexity_proxy_better_than_uniform(self, engine_factory, rng):
        docs = two_topic_corpus(rng)
        model = engine_factory().fit(docs)
        uniform_log_prob = np.log(1.0 / 6.0)  # 6 words in the vocabulary
        assert model.perplexity_proxy() > uniform_log_prob


class TestGibbsSpecifics:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            GibbsLDA(num_topics=2, iterations=0)

    def test_alpha_default_is_50_over_k(self):
        assert GibbsLDA(num_topics=10).alpha == pytest.approx(5.0)


class TestEngineAgreement:
    def test_engines_agree_on_separable_corpus(self, rng):
        docs = two_topic_corpus(rng)
        gibbs = GibbsLDA(num_topics=2, iterations=150, seed=1).fit(docs)
        variational = VariationalLDA(num_topics=2, seed=1).fit(docs)
        # Match topics by best overlap, then compare document groupings.
        for model in (gibbs, variational):
            labels = np.argmax(model.doc_topic_, axis=1)
            # Within-group consistency: all of group A same label, etc.
            assert len(set(labels[:12].tolist())) == 1
            assert len(set(labels[12:].tolist())) == 1
            assert labels[0] != labels[-1]
