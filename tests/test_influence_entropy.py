"""Tests for location entropy."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.entities import Task
from repro.geo import Point
from repro.influence import entropy_of_tasks, location_entropy


class TestLocationEntropy:
    def test_empty_is_zero(self):
        assert location_entropy({}) == 0.0

    def test_single_visitor_is_zero(self):
        assert location_entropy({1: 10}) == 0.0

    def test_uniform_two_visitors_is_ln2(self):
        assert location_entropy({1: 5, 2: 5}) == pytest.approx(math.log(2))

    def test_skew_lower_than_uniform(self):
        skew = location_entropy({1: 9, 2: 1})
        uniform = location_entropy({1: 5, 2: 5})
        assert skew < uniform

    def test_zero_counts_ignored(self):
        assert location_entropy({1: 5, 2: 0}) == 0.0

    def test_uniform_n_visitors_is_ln_n(self):
        counts = {i: 3 for i in range(7)}
        assert location_entropy(counts) == pytest.approx(math.log(7))

    @given(st.dictionaries(st.integers(0, 20), st.integers(1, 50), min_size=1, max_size=20))
    def test_bounded_by_ln_n(self, counts):
        entropy = location_entropy(counts)
        assert 0.0 <= entropy <= math.log(len(counts)) + 1e-9


class TestEntropyOfTasks:
    def make_task(self, task_id, venue_id):
        return Task(
            task_id=task_id, location=Point(0, 0), publication_time=0.0,
            valid_hours=1.0, venue_id=venue_id,
        )

    def test_lookup_through_venue(self):
        tasks = [self.make_task(0, 100), self.make_task(1, 200)]
        visits = {100: {1: 5, 2: 5}}
        entropies = entropy_of_tasks(tasks, visits)
        assert entropies[0] == pytest.approx(math.log(2))
        assert entropies[1] == 0.0  # no history

    def test_task_without_venue(self):
        task = Task(task_id=0, location=Point(0, 0), publication_time=0.0, valid_hours=1.0)
        assert entropy_of_tasks([task], {})[0] == 0.0
