"""Tests for repro.stream.runtime — golden cross-checks and edge cases."""

import pytest

from repro.assignment import IAAssigner, MTAAssigner, NearestNeighborAssigner
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.framework import OnlineSimulator, WorkerArrival, day_arrivals
from repro.geo import Point
from repro.stream import (
    AdaptiveTrigger,
    CountTrigger,
    EventLog,
    HybridTrigger,
    StreamRuntime,
    TaskCancelEvent,
    TaskPublishEvent,
    TimeWindowTrigger,
    WorkerArrivalEvent,
    WorkerChurnEvent,
    day_stream,
    log_from_arrivals,
)


def make_instance(tasks=(), current_time=0.0):
    return SCInstance(
        name="stream-test", current_time=current_time, tasks=list(tasks),
        workers=[], histories={}, social_edges=[],
        all_worker_ids=tuple(range(100)),
    )


def make_task(task_id, x, y=0.0, published=0.0, phi=5.0):
    return Task(
        task_id=task_id, location=Point(x, y), publication_time=published,
        valid_hours=phi,
    )


def make_arrival(worker_id, x, y, at, radius=10.0):
    return WorkerArrival(
        worker=Worker(
            worker_id=worker_id, location=Point(x, y), reachable_km=radius,
            speed_kmh=5.0,
        ),
        arrival_time=at,
    )


def pairs(result):
    return sorted(
        (p.worker.worker_id, p.task.task_id) for p in result.assignment.pairs
    )


class TestOnlineSimulatorEquivalence:
    """The golden cross-check: window trigger == batched simulator."""

    def _cross_check(self, tasks, arrivals, batch_hours, assigner_cls=MTAAssigner,
                     patience_hours=None):
        online = OnlineSimulator(
            assigner_cls(), None, batch_hours=batch_hours,
            patience_hours=patience_hours,
        ).run(make_instance(tasks), arrivals)
        runtime = StreamRuntime(
            assigner_cls(), None, TimeWindowTrigger(batch_hours),
            make_instance(tasks), log_from_arrivals(arrivals, tasks),
            patience_hours=patience_hours,
        )
        streamed = runtime.run()
        assert pairs(online) == pairs(streamed)
        assert [s.time for s in online.steps] == [r.time for r in streamed.rounds]
        assert [s.assigned for s in online.steps] == [
            r.assigned for r in streamed.rounds
        ]
        assert [s.expired_tasks for s in online.steps] == [
            r.expired_tasks for r in streamed.rounds
        ]
        assert [s.churned_workers for s in online.steps] == [
            r.churned_workers for r in streamed.rounds
        ]
        assert [s.online_workers for s in online.steps] == [
            r.online_workers for r in streamed.rounds
        ]
        assert [s.open_tasks for s in online.steps] == [
            r.open_tasks for r in streamed.rounds
        ]
        return online, streamed

    @pytest.mark.parametrize("batch_hours", [0.5, 1.0, 4.0])
    def test_synthetic_day(self, batch_hours):
        tasks = [
            make_task(i, float(i % 4), 0.3 * i, published=float(i % 3), phi=6.0)
            for i in range(10)
        ]
        arrivals = [make_arrival(i, 0.4 * i, 1.0, at=0.5 * i) for i in range(8)]
        online, _ = self._cross_check(tasks, arrivals, batch_hours)
        assert online.total_assigned > 0

    def test_with_patience_churn(self):
        tasks = [make_task(0, 500.0, published=0.0, phi=9.0),
                 make_task(1, 1.0, published=4.0, phi=4.0)]
        arrivals = [make_arrival(i, 0.2 * i, 0.0, at=0.5 * i) for i in range(4)]
        online, streamed = self._cross_check(
            tasks, arrivals, 1.0, patience_hours=2.0
        )
        assert streamed.total_churned == online.total_churned > 0

    def test_deadline_on_boundary_still_assignable(self):
        # Task expires exactly at t=2; the round at t=2 may still assign it
        # (zero travel time keeps the arrival-before-deadline check tight).
        tasks = [make_task(0, 0.0, published=0.0, phi=2.0)]
        arrivals = [make_arrival(1, 0.0, 0.0, at=1.5)]
        online, streamed = self._cross_check(tasks, arrivals, 2.0)
        assert streamed.total_assigned == 1

    def test_fitted_world(self, tiny_dataset, tiny_instance, fitted_models):
        arrivals = day_arrivals(tiny_dataset, 6)
        online = OnlineSimulator(
            IAAssigner(), fitted_models.influence_model(), batch_hours=4.0
        ).run(tiny_instance, arrivals)
        instance, log = day_stream(tiny_dataset, 6)
        streamed = StreamRuntime(
            IAAssigner(), fitted_models.influence_model(), TimeWindowTrigger(4.0),
            tiny_instance, log,
        ).run()
        assert streamed.total_assigned > 0
        assert pairs(online) == pairs(streamed)
        assert [s.assigned for s in online.steps] == [
            r.assigned for r in streamed.rounds
        ]

    def test_incremental_matches_full_recompute(self, tiny_dataset, tiny_instance,
                                                fitted_models):
        _, log = day_stream(tiny_dataset, 6)
        incremental = StreamRuntime(
            IAAssigner(), fitted_models.influence_model(), TimeWindowTrigger(4.0),
            tiny_instance, log,
        ).run()
        full = StreamRuntime(
            IAAssigner(), fitted_models.influence_model(), TimeWindowTrigger(4.0),
            tiny_instance, log, incremental=False,
        ).run()
        assert pairs(incremental) == pairs(full)


class TestTriggerBehaviour:
    def test_count_trigger_fires_at_nth_admission(self):
        tasks = [make_task(i, 0.5 * i, published=float(i)) for i in range(4)]
        arrivals = [make_arrival(i, 0.5 * i, 0.0, at=float(i)) for i in range(4)]
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, CountTrigger(4),
            make_instance(tasks), log_from_arrivals(arrivals, tasks),
        )
        result = runtime.run()
        # 8 admissions -> rounds at the 4th and 8th admission times, plus the
        # final flush at the end time.
        assert [r.time for r in result.rounds][:2] == [1.0, 3.0]
        assert result.rounds[0].drained_events == 4

    def test_count_trigger_flush_round_drains_leftovers(self):
        tasks = [make_task(0, 0.0, published=0.0, phi=3.0)]
        arrivals = [make_arrival(1, 0.0, 0.0, at=0.0)]
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, CountTrigger(50),
            make_instance(tasks), log_from_arrivals(arrivals, tasks),
        )
        result = runtime.run()
        # Never reaches 50 admissions: a single flush round at the end time.
        assert len(result.rounds) == 1
        assert result.rounds[0].time == pytest.approx(3.0)
        assert result.total_assigned == 1

    def test_hybrid_fires_on_earlier_mechanism(self):
        tasks = [make_task(i, 0.5 * i, published=0.1 * i, phi=8.0) for i in range(6)]
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(3, 4.0),
            make_instance(tasks), log_from_arrivals([], tasks),
        )
        result = runtime.run()
        # Hybrid is time-based: a start round at t=0 (draining the t=0
        # publish), then the count mechanism (3 publishes) beats the 4 h
        # window and fires at the third remaining publish.
        assert result.rounds[0].time == pytest.approx(0.0)
        assert result.rounds[1].time == pytest.approx(0.3)

    def test_adaptive_trigger_deterministic_cost(self):
        tasks = [make_task(i, 0.5 * i, published=0.5 * i, phi=6.0) for i in range(8)]
        arrivals = [make_arrival(i, 0.5 * i, 0.2, at=0.5 * i) for i in range(8)]
        trigger = AdaptiveTrigger(
            target_seconds=4.0, initial_window_hours=1.0,
            min_window_hours=0.25, max_window_hours=2.0,
            cost_of=lambda record: float(record.open_tasks),
        )
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, trigger,
            make_instance(tasks), log_from_arrivals(arrivals, tasks),
        )
        result = runtime.run()
        assert result.total_assigned > 0
        assert trigger.window_hours <= 2.0


class TestEdgeCases:
    def test_empty_log_runs_one_empty_round(self):
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(current_time=3.0), EventLog([]),
        )
        result = runtime.run()
        assert len(result.rounds) == 1
        assert result.rounds[0].time == pytest.approx(3.0)
        assert result.total_assigned == 0
        assert runtime.done

    def test_empty_batches_recorded_as_empty_rounds(self):
        # One task early, one arrival late: the rounds between drain nothing.
        tasks = [make_task(0, 1.0, published=0.0, phi=8.0)]
        arrivals = [make_arrival(1, 0.0, 0.0, at=6.0)]
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), log_from_arrivals(arrivals, tasks),
        )
        result = runtime.run()
        empty = [r for r in result.rounds if r.drained_events == 0]
        assert empty and all(r.assigned == 0 for r in empty)
        assert result.total_assigned == 1

    def test_all_tasks_expire_before_first_round(self):
        # Count trigger waits for 3 admissions; both tasks die before any
        # round fires, so the flush round sees empty pools.
        tasks = [
            make_task(0, 1.0, published=0.0, phi=1.0),
            make_task(1, 2.0, published=0.5, phi=1.0),
        ]
        arrivals = [make_arrival(7, 0.0, 0.0, at=8.0)]
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, CountTrigger(3),
            make_instance(tasks), log_from_arrivals(arrivals, tasks),
            end_time=9.0,
        )
        result = runtime.run()
        assert result.total_assigned == 0
        assert result.total_expired == 2
        assert result.rounds[-1].online_workers == 1
        assert result.rounds[-1].open_tasks == 0

    def test_simultaneous_events_deterministic(self):
        # Everything lands at t=1.0; two runs over logs built from different
        # source orders must produce identical rounds and assignments.
        tasks = [make_task(i, 0.5 + i, published=1.0, phi=5.0) for i in range(3)]
        arrivals = [make_arrival(i, 0.1 * i, 0.0, at=1.0) for i in range(3)]
        events = [
            WorkerArrivalEvent(time=a.arrival_time, worker=a.worker)
            for a in arrivals
        ] + [TaskPublishEvent(time=t.publication_time, task=t) for t in tasks]
        forward = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), EventLog(events), end_time=6.0,
        ).run()
        backward = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), EventLog(reversed(events)), end_time=6.0,
        ).run()
        assert pairs(forward) == pairs(backward)
        assert [r.time for r in forward.rounds] == [r.time for r in backward.rounds]

    def test_cancellation_removes_open_task(self):
        tasks = [make_task(0, 1.0, published=0.0, phi=8.0)]
        log = log_from_arrivals(
            [make_arrival(1, 0.0, 0.0, at=3.0)], tasks,
            extra=[TaskCancelEvent(time=1.0, task_id=0)],
        )
        result = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), log,
        ).run()
        assert result.total_cancelled == 1
        assert result.total_assigned == 0
        assert result.total_expired == 0

    def test_explicit_churn_event(self):
        tasks = [make_task(0, 1.0, published=4.0, phi=2.0)]
        log = log_from_arrivals(
            [make_arrival(1, 0.0, 0.0, at=0.0)], tasks,
            extra=[WorkerChurnEvent(time=2.0, worker_id=1)],
        )
        result = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), log,
        ).run()
        assert result.total_churned == 1
        assert result.total_assigned == 0

    def test_churn_event_after_assignment_is_noop(self):
        tasks = [make_task(0, 1.0, published=0.0, phi=8.0)]
        log = log_from_arrivals(
            [make_arrival(1, 0.0, 0.0, at=0.0)], tasks,
            extra=[WorkerChurnEvent(time=3.0, worker_id=1)],
        )
        result = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), log,
        ).run()
        assert result.total_assigned == 1
        assert result.total_churned == 0

    def test_rejects_negative_patience_and_max_rounds(self):
        with pytest.raises(ValueError):
            StreamRuntime(
                NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                make_instance(), EventLog([]), patience_hours=-1.0,
            )
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(), EventLog([]),
        )
        with pytest.raises(ValueError):
            runtime.run(max_rounds=-1)

    def test_run_is_resumable_and_idempotent_when_done(self):
        tasks = [make_task(i, 0.5 * i, published=float(i), phi=4.0) for i in range(4)]
        arrivals = [make_arrival(i, 0.5 * i, 0.2, at=float(i)) for i in range(4)]
        log = log_from_arrivals(arrivals, tasks)
        whole = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), log,
        ).run()
        stepped = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), log,
        )
        stepped.run(max_rounds=2)
        assert not stepped.done
        result = stepped.run()  # continue to completion
        assert stepped.done
        assert pairs(result) == pairs(whole)
        assert result.summary().rounds == whole.summary().rounds
        again = stepped.run()  # already done: unchanged
        assert again.summary().rounds == whole.summary().rounds

    def test_end_time_resolves_on_start(self):
        tasks = [make_task(0, 0.0, published=0.0, phi=3.0)]
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), log_from_arrivals([], tasks),
        )
        assert runtime.end_time is None  # not started yet
        runtime.run(max_rounds=1)
        assert runtime.end_time == pytest.approx(3.0)  # latest deadline
        assert runtime.clock == pytest.approx(0.0)

    def test_wait_metrics_recorded(self):
        tasks = [make_task(0, 1.0, published=0.0, phi=8.0)]
        arrivals = [make_arrival(1, 0.0, 0.0, at=0.0)]
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0),
            make_instance(tasks), log_from_arrivals(arrivals, tasks),
        )
        result = runtime.run()
        assert result.metrics.task_wait_histogram.count == 1
        assert result.metrics.task_wait_histogram.max_seen == pytest.approx(0.0)
        assert result.metrics.worker_wait_histogram.count == 1
        assert result.metrics.worker_wait_histogram.max_seen == pytest.approx(0.0)
        summary = result.summary()
        assert summary.assigned == 1
        assert summary.rounds == len(result.rounds)

    def test_live_task_index_tracks_pools(self):
        tasks = [make_task(i, 2.0 * i, published=0.0, phi=3.0) for i in range(5)]
        arrivals = [make_arrival(9, 0.0, 0.0, at=0.0, radius=3.0)]
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(tasks), log_from_arrivals(arrivals, tasks),
            end_time=4.0,
        )
        runtime.run(max_rounds=1)
        assert len(runtime.state.task_index) == runtime.state.num_open_tasks == 4
        runtime.run()  # the t=4 round drains the t=3 expiries
        assert len(runtime.state.task_index) == runtime.state.num_open_tasks == 0


class TestAdmissionControllerValidation:
    def test_rejects_bad_parameters(self):
        from repro.stream import AdmissionController

        with pytest.raises(ValueError, match="budget_seconds"):
            AdmissionController(budget_seconds=0.0)
        with pytest.raises(ValueError, match="policy"):
            AdmissionController(budget_seconds=1.0, policy="drop")
        with pytest.raises(ValueError, match="resume_fraction"):
            AdmissionController(budget_seconds=1.0, resume_fraction=0.0)

    def test_hysteresis(self):
        from repro.stream import AdmissionController
        from repro.stream.metrics import RoundRecord

        def record(cost):
            return RoundRecord(
                index=0, time=0.0, online_workers=0, open_tasks=0,
                drained_events=0, assigned=0, expired_tasks=0,
                churned_workers=0, cancelled_tasks=0, round_seconds=cost,
            )

        controller = AdmissionController(budget_seconds=1.0)
        assert not controller.overloaded
        controller.on_round(record(1.5))
        assert controller.overloaded
        controller.on_round(record(0.8))  # within hysteresis band: stays
        assert controller.overloaded
        controller.on_round(record(0.4))  # below half budget: recovers
        assert not controller.overloaded


class TestAdmissionFinalFlush:
    def test_backlog_force_released_when_stream_ends_overloaded(self):
        """A run that ends while still over budget must not strand parked
        tasks: the final flush releases the backlog and admits directly."""
        from repro.stream import AdmissionController

        workers = [
            WorkerArrivalEvent(
                time=0.0,
                worker=Worker(worker_id=i, location=Point(float(i), 0.0),
                              reachable_km=20.0),
            )
            for i in range(4)
        ]
        tasks = [make_task(i, float(i), published=1.0, phi=6.0) for i in range(4)]
        log = EventLog([
            *workers,
            *(TaskPublishEvent(time=1.0, task=t) for t in tasks),
        ])
        controller = AdmissionController(
            budget_seconds=0.5, policy="defer",
            cost_of=lambda record: 1.0,  # permanently over budget
        )
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            make_instance(current_time=0.0), log, end_time=3.0,
            admission=controller,
        )
        result = runtime.run()
        assert controller.overloaded  # never recovered...
        assert controller.backlog_size == 0  # ...yet nothing is stranded
        assert result.metrics.total_deferred == 4
        # The final round assigned the force-released tasks.
        assert result.total_assigned == 4


def clustered(num_workers=60, num_tasks=70, seed=41):
    from repro.stream import synthetic_stream

    return synthetic_stream(
        num_workers=num_workers, num_tasks=num_tasks, duration_hours=24.0,
        area_km=20.0, valid_hours=4.0, reachable_km=8.0,
        churn_fraction=0.05, cancel_fraction=0.02, clusters=4, seed=seed,
    )


def round_rows(result):
    return [
        (r.index, r.time, r.online_workers, r.open_tasks, r.drained_events,
         r.assigned, r.expired_tasks, r.churned_workers, r.cancelled_tasks)
        for r in result.rounds
    ]


class TestPipelinedRuntime:
    """The overlapped executor: same output, phase timings recorded."""

    def test_pipeline_requires_shards(self):
        base, log = clustered(num_workers=10, num_tasks=10)
        with pytest.raises(ValueError, match="pipeline=True requires shards"):
            StreamRuntime(
                NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, log, pipeline=True,
            )

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_pipelined_matches_serial(self, backend):
        base, log = clustered()
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
        ).run()
        with StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=4, executor=backend, pipeline=True,
        ) as runtime:
            pipelined = runtime.run()
        assert pairs(pipelined) == pairs(plain)
        assert round_rows(pipelined) == round_rows(plain)

    def test_phase_timings_recorded(self):
        base, log = clustered()
        with StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=4, executor="thread", pipeline=True,
        ) as runtime:
            result = runtime.run()
        busy = [r for r in result.rounds if r.assigned > 0]
        assert busy, "world must assign something"
        for record in busy:
            assert record.prepare_seconds > 0.0
            assert record.solve_seconds > 0.0
            assert record.merge_seconds >= 0.0
            assert record.drain_seconds >= 0.0
        totals = result.metrics.phase_totals()
        assert set(totals) == {"drain", "prepare", "solve", "merge"}
        assert totals["prepare"] == sum(r.prepare_seconds for r in result.rounds)

    def test_unsharded_rounds_report_phases_too(self):
        base, log = clustered()
        result = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
        ).run()
        busy = [r for r in result.rounds if r.assigned > 0]
        assert busy and all(r.prepare_seconds > 0.0 for r in busy)
        assert all(r.repacks == 0 for r in result.rounds)

    def test_close_is_idempotent_and_reusable_as_context_manager(self):
        base, log = clustered(num_workers=20, num_tasks=20)
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
            shards=2, executor="thread", pipeline=True,
        )
        runtime.run()
        runtime.close()
        runtime.close()  # second close must be a no-op, not an error

        with StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
            shards=2, executor="thread",
        ) as managed:
            managed.run(max_rounds=2)
        managed.close()  # close after __exit__ is also a no-op

    def test_context_manager_returns_runtime(self):
        base, log = clustered(num_workers=10, num_tasks=10)
        with StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(4.0), base, log,
        ) as runtime:
            assert isinstance(runtime, StreamRuntime)


class CrashingAssigner(NearestNeighborAssigner):
    """Kills the hosting *pool worker* mid-solve — an OOM/segfault stand-in.

    Module-level so the process backend can pickle it to pool workers;
    ``os._exit`` skips every handler, exactly like the kernel's OOM killer.
    Single-shard rounds solve in the calling process (where this behaves
    like its parent class), so only cross-process solves die.
    """

    def __init__(self):
        import os

        super().__init__()
        self._parent_pid = os.getpid()

    def assign(self, prepared):
        import os

        if os.getpid() == self._parent_pid:
            return super().assign(prepared)
        os._exit(1)


class TestBrokenProcessPool:
    def _crashing_runtime(self):
        base, log = clustered()
        return StreamRuntime(
            CrashingAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=4, executor="process",
        )

    def test_worker_crash_names_shard_and_round(self):
        with self._crashing_runtime() as runtime:
            with pytest.raises(RuntimeError, match=r"shard \d+ in round \d+"):
                runtime.run()

    def test_crash_message_points_at_recovery(self):
        with self._crashing_runtime() as runtime:
            with pytest.raises(RuntimeError, match="resume from its last checkpoint"):
                runtime.run()

    def test_close_after_crash_is_idempotent_and_fast(self):
        import time as _time

        runtime = self._crashing_runtime()
        with pytest.raises(RuntimeError):
            runtime.run()
        started = _time.perf_counter()
        runtime.close()
        runtime.close()  # second close after a broken pool is still a no-op
        assert _time.perf_counter() - started < 30.0  # no hang on dead workers
        # The executor's shared slabs and scratch blocks are gone too.
        executor = runtime.shard_executor
        assert executor._slabs is None
        assert executor._scratch == {}
