"""Tests for repro.obs.histo — log-bucketed mergeable histograms.

The percentile oracle checks pin the headline contract: any reported
percentile is within ``relative_error`` of numpy's nearest-rank
(``inverted_cdf``) percentile over the raw samples.
"""

import json

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.obs.histo import (
    SECONDS_HISTOGRAM,
    WAIT_HOURS_HISTOGRAM,
    LogHistogram,
)


def make(**overrides):
    config = dict(SECONDS_HISTOGRAM)
    config.update(overrides)
    return LogHistogram(**config)


class TestConstruction:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0, max_value=1.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=2.0, max_value=1.0)
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=0)

    def test_relative_error_bound(self):
        assert make().relative_error == pytest.approx(10 ** (1 / 64) - 1)

    def test_shared_configs_are_constructible(self):
        LogHistogram(**SECONDS_HISTOGRAM)
        LogHistogram(**WAIT_HOURS_HISTOGRAM)


class TestRecording:
    def test_underflow_and_overflow_buckets(self):
        histogram = make()
        for value in (0.0, -1.0, float("nan")):  # at/below min_value
            histogram.record(value)
        histogram.record(1e9)  # at/above max_value
        assert histogram.counts[0] == 3
        assert histogram.counts[-1] == 1
        assert histogram.count == 4

    def test_count_total_min_max_stay_exact(self):
        histogram = make()
        for value in (0.002, 0.5, 3.0):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.min_seen == 0.002
        assert histogram.max_seen == 3.0
        assert histogram.total == pytest.approx(3.502)
        assert histogram.mean == pytest.approx(3.502 / 3)

    def test_record_many_matches_record_buckets(self):
        rng = np.random.default_rng(7)
        values = np.concatenate([
            rng.lognormal(mean=-2.0, sigma=2.0, size=500),
            [0.0, 1e-7, 1e-6, 1e4, 1e5, 2e4],  # edge and out-of-range values
        ])
        one, many = make(), make()
        for value in values:
            one.record(float(value))
        many.record_many(values)
        assert np.array_equal(one.counts, many.counts)
        assert one.count == many.count
        assert one.min_seen == many.min_seen
        assert one.max_seen == many.max_seen
        # total may differ in the last ulp (pairwise vs sequential sum).
        assert one.total == pytest.approx(many.total, rel=1e-12)

    def test_record_many_empty_is_noop(self):
        histogram = make()
        histogram.record_many([])
        assert histogram.empty


class TestPercentileOracle:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_within_relative_error_of_numpy(self, seed):
        rng = np.random.default_rng(seed)
        values = np.clip(
            rng.lognormal(mean=-1.0, sigma=1.5, size=2000), 2e-6, 5e3
        )
        histogram = make()
        histogram.record_many(values)
        for q in (1.0, 25.0, 50.0, 90.0, 99.0, 99.9):
            oracle = float(np.percentile(values, q, method="inverted_cdf"))
            assert histogram.percentile(q) == pytest.approx(
                oracle, rel=histogram.relative_error
            ), f"p{q} drifted beyond the bucket-width bound"

    def test_empty_returns_zero_and_range_is_checked(self):
        histogram = make()
        assert histogram.percentile(50.0) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(101.0)
        with pytest.raises(ValueError):
            histogram.percentile(-0.5)

    def test_single_sample_reports_exactly(self):
        histogram = make()
        histogram.record(0.25)
        # Clamping to [min_seen, max_seen] collapses the bucket midpoint
        # onto the only observed value.
        for q in (0.0, 50.0, 100.0):
            assert histogram.percentile(q) == 0.25

    def test_percentiles_maps_each_quantile(self):
        histogram = make()
        histogram.record_many([0.1, 0.2, 0.4])
        out = histogram.percentiles((50.0, 99.0))
        assert set(out) == {50.0, 99.0}
        assert out[50.0] <= out[99.0]


class TestMerge:
    def test_merge_equals_combined_recording(self):
        rng = np.random.default_rng(5)
        a_values = rng.lognormal(size=300)
        b_values = rng.lognormal(size=200)
        a, b, both = make(), make(), make()
        a.record_many(a_values)
        b.record_many(b_values)
        both.record_many(np.concatenate([a_values, b_values]))
        a.merge(b)
        assert np.array_equal(a.counts, both.counts)
        assert a.count == both.count
        assert a.min_seen == both.min_seen
        assert a.max_seen == both.max_seen
        assert a.total == pytest.approx(both.total, rel=1e-12)

    def test_merge_config_mismatch_raises(self):
        with pytest.raises(DataError, match="bucket configuration mismatch"):
            make().merge(LogHistogram(**WAIT_HOURS_HISTOGRAM))


class TestStateDict:
    def test_roundtrip_bit_exact(self):
        histogram = make()
        histogram.record_many([0.001, 0.5, 2.0, 2.0, 1e9, 0.0])
        restored = LogHistogram.from_state_dict(histogram.state_dict())
        assert restored == histogram

    def test_empty_roundtrip(self):
        restored = LogHistogram.from_state_dict(make().state_dict())
        assert restored == make()
        assert restored.percentile(99.0) == 0.0

    def test_state_is_json_safe(self):
        histogram = make()
        histogram.record_many([0.25, 0.5])
        reparsed = json.loads(json.dumps(histogram.state_dict()))
        restored = LogHistogram.from_state_dict(reparsed)
        assert restored == histogram

    def test_config_mismatch_raises(self):
        state = make().state_dict()
        with pytest.raises(DataError, match="bucket configuration mismatch"):
            LogHistogram(**WAIT_HOURS_HISTOGRAM).load_state_dict(state)

    def test_out_of_range_bucket_raises(self):
        state = make().state_dict()
        state["counts"] = [[10_000, 3]]
        with pytest.raises(DataError, match="outside"):
            make().load_state_dict(state)
