"""Tests for the lexicographic matching solvers.

The critical property: both the from-scratch MCMF solver and the dense
scipy reduction return (1) a maximum-cardinality matching that (2) has
minimum total cost among such matchings.  They are cross-validated on
random instances and against brute force on small ones.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment import (
    solve_lexicographic_dense,
    solve_lexicographic_mcmf,
    solve_lexicographic_substrate,
)
from repro.assignment.solvers import solve_lexicographic


def brute_force(cost, feasible):
    """Exhaustive lexicographic optimum for tiny instances."""
    n_workers, n_tasks = cost.shape
    best_size, best_cost = -1, float("inf")
    workers = range(n_workers)
    tasks = list(range(n_tasks))
    for k in range(min(n_workers, n_tasks), -1, -1):
        found_any = False
        for worker_subset in itertools.combinations(workers, k):
            for task_perm in itertools.permutations(tasks, k):
                if all(feasible[w, t] for w, t in zip(worker_subset, task_perm)):
                    found_any = True
                    total = sum(cost[w, t] for w, t in zip(worker_subset, task_perm))
                    if total < best_cost:
                        best_cost = total
        if found_any:
            best_size = k
            break
    return best_size, (0.0 if best_size <= 0 else best_cost)


def check_solution(pairs, cost, feasible, expected_size, expected_cost):
    assert len(pairs) == expected_size
    assert len({w for w, _ in pairs}) == len(pairs)
    assert len({t for _, t in pairs}) == len(pairs)
    for w, t in pairs:
        assert feasible[w, t]
    total = sum(cost[w, t] for w, t in pairs)
    assert total == pytest.approx(expected_cost, abs=1e-9)


class TestSolversExact:
    @pytest.mark.parametrize("solver", [solve_lexicographic_dense, solve_lexicographic_mcmf, solve_lexicographic_substrate])
    def test_empty(self, solver):
        assert solver(np.zeros((0, 0)), np.zeros((0, 0), dtype=bool)) == []

    @pytest.mark.parametrize("solver", [solve_lexicographic_dense, solve_lexicographic_mcmf, solve_lexicographic_substrate])
    def test_no_feasible_pairs(self, solver):
        cost = np.ones((2, 2))
        assert solver(cost, np.zeros((2, 2), dtype=bool)) == []

    @pytest.mark.parametrize("solver", [solve_lexicographic_dense, solve_lexicographic_mcmf, solve_lexicographic_substrate])
    def test_negative_cost_rejected(self, solver):
        cost = np.array([[-1.0]])
        with pytest.raises(ValueError):
            solver(cost, np.array([[True]]))

    @pytest.mark.parametrize("solver", [solve_lexicographic_dense, solve_lexicographic_mcmf, solve_lexicographic_substrate])
    def test_shape_mismatch_rejected(self, solver):
        with pytest.raises(ValueError):
            solver(np.ones((2, 2)), np.ones((2, 3), dtype=bool))

    @pytest.mark.parametrize("solver", [solve_lexicographic_dense, solve_lexicographic_mcmf, solve_lexicographic_substrate])
    def test_cardinality_beats_cost(self, solver):
        """A huge-cost pair must still be taken if it raises cardinality."""
        cost = np.array([
            [0.0, 1000.0],
            [np.nan, np.nan],  # infeasible row values are never read
        ])
        feasible = np.array([[True, True], [True, False]])
        cost = np.nan_to_num(cost, nan=0.0)
        pairs = solver(cost, feasible)
        # Max cardinality is 2: worker1->task0 forces worker0->task1 (cost 1000).
        assert sorted(pairs) == [(0, 1), (1, 0)]

    @pytest.mark.parametrize("solver", [solve_lexicographic_dense, solve_lexicographic_mcmf, solve_lexicographic_substrate])
    def test_min_cost_among_max_matchings(self, solver):
        cost = np.array([
            [1.0, 9.0],
            [2.0, 3.0],
        ])
        feasible = np.ones((2, 2), dtype=bool)
        pairs = solver(cost, feasible)
        # Optimal: (0,0)+(1,1) = 4 over (0,1)+(1,0) = 11.
        assert sorted(pairs) == [(0, 0), (1, 1)]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.data())
    def test_both_match_brute_force(self, n_workers, n_tasks, data):
        cost = np.array([
            [data.draw(st.floats(0, 10)) for _ in range(n_tasks)]
            for _ in range(n_workers)
        ])
        feasible = np.array([
            [data.draw(st.booleans()) for _ in range(n_tasks)]
            for _ in range(n_workers)
        ])
        expected_size, expected_cost = brute_force(cost, feasible)
        expected_size = max(expected_size, 0)
        for solver in (
            solve_lexicographic_dense,
            solve_lexicographic_mcmf,
            solve_lexicographic_substrate,
        ):
            pairs = solver(cost, feasible)
            check_solution(pairs, cost, feasible, expected_size, expected_cost)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 10_000))
    def test_engines_agree_on_random_instances(self, n_workers, n_tasks, seed):
        rng = np.random.default_rng(seed)
        cost = rng.random((n_workers, n_tasks))
        feasible = rng.random((n_workers, n_tasks)) < 0.6
        pairs_dense = solve_lexicographic_dense(cost, feasible)
        pairs_mcmf = solve_lexicographic_mcmf(cost, feasible)
        pairs_substrate = solve_lexicographic_substrate(cost, feasible)
        assert len(pairs_dense) == len(pairs_mcmf) == len(pairs_substrate)
        cost_dense = sum(cost[w, t] for w, t in pairs_dense)
        cost_mcmf = sum(cost[w, t] for w, t in pairs_mcmf)
        cost_substrate = sum(cost[w, t] for w, t in pairs_substrate)
        assert cost_dense == pytest.approx(cost_mcmf, abs=1e-6)
        assert cost_dense == pytest.approx(cost_substrate, abs=1e-6)


class TestDispatch:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            solve_lexicographic(np.ones((1, 1)), np.ones((1, 1), dtype=bool), engine="quantum")

    def test_auto_dispatch_small_and_large(self):
        rng = np.random.default_rng(0)
        cost = rng.random((3, 3))
        feasible = np.ones((3, 3), dtype=bool)
        small = solve_lexicographic(cost, feasible, engine="auto", dense_threshold=100)
        large = solve_lexicographic(cost, feasible, engine="auto", dense_threshold=1)
        assert sorted(small) == sorted(large)

    def test_explicit_engines_agree(self):
        rng = np.random.default_rng(3)
        cost = rng.random((6, 7))
        feasible = rng.random((6, 7)) < 0.7
        results = {
            engine: sorted(solve_lexicographic(cost, feasible, engine=engine))
            for engine in ("mcmf", "substrate", "dense", "hungarian")
        }
        sizes = {len(pairs) for pairs in results.values()}
        assert len(sizes) == 1
        totals = {
            engine: sum(cost[w, t] for w, t in pairs)
            for engine, pairs in results.items()
        }
        reference = totals["mcmf"]
        for engine, total in totals.items():
            assert total == pytest.approx(reference, abs=1e-9), engine
