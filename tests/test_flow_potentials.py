"""Tests for repro.flow.potentials — Dijkstra-with-potentials MCMF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FlowError
from repro.flow import (
    Dinic,
    FlowNetwork,
    MinCostMaxFlow,
    PotentialMinCostMaxFlow,
)


def diamond_network():
    """Source 0 -> {1, 2} -> sink 3 with asymmetric costs."""
    network = FlowNetwork(4)
    network.add_edge(0, 1, capacity=1, cost=0.0)
    network.add_edge(0, 2, capacity=1, cost=0.0)
    network.add_edge(1, 3, capacity=1, cost=5.0)
    network.add_edge(2, 3, capacity=1, cost=1.0)
    return network


def random_bipartite(num_left, num_right, density, seed):
    """A unit-capacity assignment graph with random costs; returns both an
    SPFA copy and a potentials copy (identical structure)."""
    rng = np.random.default_rng(seed)
    mask = rng.random((num_left, num_right)) < density
    cost = np.round(rng.random((num_left, num_right)) * 9, 3)
    networks = []
    for _ in range(2):
        network = FlowNetwork(num_left + num_right + 2)
        source, sink = 0, num_left + num_right + 1
        for i in range(num_left):
            network.add_edge(source, 1 + i, capacity=1, cost=0.0)
        for j in range(num_right):
            network.add_edge(1 + num_left + j, sink, capacity=1, cost=0.0)
        for i in range(num_left):
            for j in range(num_right):
                if mask[i, j]:
                    network.add_edge(
                        1 + i, 1 + num_left + j, capacity=1, cost=float(cost[i, j])
                    )
        networks.append((network, source, sink))
    return networks


class TestPotentialSolver:
    def test_source_equals_sink_rejected(self):
        with pytest.raises(FlowError):
            PotentialMinCostMaxFlow(FlowNetwork(2)).solve(0, 0)

    def test_negative_cost_rejected(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, capacity=1, cost=-1.0)
        with pytest.raises(FlowError):
            PotentialMinCostMaxFlow(network).solve(0, 1)

    def test_diamond_prefers_cheap_path(self):
        network = diamond_network()
        result = PotentialMinCostMaxFlow(network).solve(0, 3)
        assert result.max_flow == 2
        assert result.total_cost == pytest.approx(6.0)

    def test_no_path_gives_zero(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, capacity=1, cost=1.0)
        result = PotentialMinCostMaxFlow(network).solve(0, 2)
        assert result.max_flow == 0
        assert result.total_cost == 0.0

    def test_flow_conservation(self):
        networks = random_bipartite(6, 7, 0.5, seed=3)
        network, source, sink = networks[0]
        PotentialMinCostMaxFlow(network).solve(source, sink)
        # Net flow out of every internal node must be zero.
        for node in range(network.num_nodes):
            if node in (source, sink):
                continue
            net = 0
            for edge_id in range(0, len(network.edge_to), 2):
                tail = network.edge_to[edge_id ^ 1]
                head = network.edge_to[edge_id]
                flow = network.flow_on(edge_id)
                if tail == node:
                    net += flow
                if head == node:
                    net -= flow
            assert net == 0, f"node {node} violates conservation"

    @settings(max_examples=40, deadline=None)
    @given(
        num_left=st.integers(1, 8),
        num_right=st.integers(1, 8),
        density=st.floats(0.1, 1.0),
        seed=st.integers(0, 10_000),
    )
    def test_matches_spfa_solver(self, num_left, num_right, density, seed):
        (spfa_net, s1, t1), (pot_net, s2, t2) = random_bipartite(
            num_left, num_right, density, seed
        )
        spfa = MinCostMaxFlow(spfa_net).solve(s1, t1)
        potentials = PotentialMinCostMaxFlow(pot_net).solve(s2, t2)
        assert potentials.max_flow == spfa.max_flow
        assert potentials.total_cost == pytest.approx(spfa.total_cost, abs=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(
        num_left=st.integers(1, 8),
        num_right=st.integers(1, 8),
        seed=st.integers(0, 10_000),
    )
    def test_flow_value_matches_dinic(self, num_left, num_right, seed):
        """Max-flow value agrees with the dedicated max-flow solver."""
        (net_a, s1, t1), (net_b, s2, t2) = random_bipartite(
            num_left, num_right, 0.5, seed
        )
        potentials = PotentialMinCostMaxFlow(net_a).solve(s1, t1)
        dinic_value = Dinic(net_b).max_flow(s2, t2)
        assert potentials.max_flow == dinic_value

    def test_costs_never_exceeded_by_capacity(self):
        """Flow on every edge stays within capacity after solving."""
        networks = random_bipartite(5, 5, 0.6, seed=11)
        network, source, sink = networks[0]
        PotentialMinCostMaxFlow(network).solve(source, sink)
        for edge_id in range(0, len(network.edge_to), 2):
            assert 0 <= network.flow_on(edge_id) <= 1
