"""Tests for bounded-memory event-log segments.

The load-bearing property: a :class:`SegmentedEventLog` — any window
partition, any cache budget — replays **bit-identically** to the
materialized log it windows, because the columnar sort key is time-primary
and windows partition events by time, so every global cursor position,
drain boundary and admission count is recoverable from per-segment state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment import NearestNeighborAssigner
from repro.entities import Task, Worker
from repro.exceptions import DataError
from repro.geo import Point
from repro.stream import (
    EventLog,
    SegmentedEventLog,
    StreamRuntime,
    TimeWindowTrigger,
    TaskPublishEvent,
    WorkerArrivalEvent,
    synthetic_stream,
)

from tests.strategies import stream_worlds


def multi_day_world(**overrides):
    config = dict(
        num_workers=60, num_tasks=70, duration_hours=8.0, area_km=20.0,
        valid_hours=4.0, reachable_km=6.0, churn_fraction=0.1,
        cancel_fraction=0.05, clusters=3, seed=23, days=3,
        relocate_fraction=0.5, overnight_churn_fraction=0.1,
    )
    config.update(overrides)
    return synthetic_stream(**config)


def sorted_pairs(result):
    return sorted(
        (pair.worker.worker_id, pair.task.task_id)
        for pair in result.assignment.pairs
    )


def round_rows(result):
    return [
        (r.index, r.time, r.online_workers, r.open_tasks, r.drained_events,
         r.assigned, r.expired_tasks, r.churned_workers, r.cancelled_tasks,
         r.relocated_workers)
        for r in result.rounds
    ]


def tiny_log():
    return EventLog([
        WorkerArrivalEvent(
            time=1.0,
            worker=Worker(worker_id=0, location=Point(0.0, 0.0),
                          reachable_km=5.0),
        ),
        TaskPublishEvent(
            time=26.0,
            task=Task(task_id=0, location=Point(1.0, 1.0),
                      publication_time=26.0, valid_hours=3.0),
        ),
    ])


class TestConstruction:
    def test_rejects_empty_builders(self):
        with pytest.raises(DataError, match="at least one segment"):
            SegmentedEventLog([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataError, match="builders but"):
            SegmentedEventLog([lambda: EventLog([])], [0.0, 24.0])

    def test_rejects_non_increasing_starts(self):
        builders = [lambda: EventLog([]), lambda: EventLog([])]
        with pytest.raises(DataError, match="strictly increasing"):
            SegmentedEventLog(builders, [24.0, 24.0])
        with pytest.raises(DataError, match="strictly increasing"):
            SegmentedEventLog(builders, [24.0, 0.0])

    def test_rejects_non_finite_starts(self):
        with pytest.raises(DataError, match="finite"):
            SegmentedEventLog([lambda: EventLog([])], [float("nan")])

    def test_rejects_bad_cache_budget(self):
        with pytest.raises(ValueError, match="max_cached"):
            SegmentedEventLog([lambda: EventLog([])], [0.0], max_cached=0)

    def test_rejects_non_eventlog_builder(self):
        with pytest.raises(DataError, match="expected an EventLog"):
            SegmentedEventLog([lambda: "nope"], [0.0])

    def test_rejects_event_outside_its_window(self):
        log = tiny_log()  # events at t=1 and t=26
        with pytest.raises(DataError, match="past the next window start"):
            SegmentedEventLog([lambda: log, lambda: EventLog([])], [0.0, 24.0])
        with pytest.raises(DataError, match="before its window start"):
            SegmentedEventLog([lambda: log], [12.0])

    def test_rejects_non_deterministic_rebuild(self):
        logs = iter([tiny_log(), EventLog([])])
        segmented = SegmentedEventLog([lambda: next(logs)], [0.0])
        segmented._cache.clear()
        with pytest.raises(DataError, match="not deterministic"):
            segmented.segment(0)


class TestCacheLifecycle:
    def test_lru_holds_at_most_the_budget(self):
        _, log = multi_day_world()
        segmented = SegmentedEventLog.from_log(
            log, segment_hours=8.0, max_cached=2
        )
        assert segmented.cached_segments == ()
        for index in range(segmented.segment_count):
            segmented.segment(index)
            assert len(segmented.cached_segments) <= 2
        last = segmented.segment_count - 1
        assert segmented.cached_segments == (last - 1, last)

    def test_release_before_drops_passed_segments(self):
        _, log = multi_day_world()
        segmented = SegmentedEventLog.from_log(
            log, segment_hours=8.0, max_cached=4
        )
        for index in range(3):
            segmented.segment(index)
        base = int(segmented._bases[2])
        released = segmented.release_before(base)
        assert released == 2
        assert segmented.cached_segments == (2,)
        assert segmented.release_before(base) == 0

    def test_runtime_drain_releases_segments(self):
        base, log = multi_day_world()
        segmented = SegmentedEventLog.from_log(log, segment_hours=8.0)
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, segmented,
        )
        runtime.run()
        # Replay finished: everything behind the end cursor was dropped,
        # so only the final segment (plus LRU lookahead) is alive.
        assert all(
            index >= segmented.segment_count - segmented.max_cached
            for index in segmented.cached_segments
        )


class TestFromLogRoundTrip:
    def test_materialize_is_fingerprint_identical(self):
        _, log = multi_day_world()
        segmented = SegmentedEventLog.from_log(log, segment_hours=24.0)
        assert segmented.segment_count >= 2
        assert len(segmented) == len(log)
        assert segmented.materialize().fingerprint() == log.fingerprint()

    def test_day_boundaries_are_period_aligned(self):
        _, log = multi_day_world()
        segmented = SegmentedEventLog.from_log(log, segment_hours=24.0)
        assert all(start % 24.0 == 0.0 for start in segmented.boundaries)

    def test_explicit_boundaries(self):
        _, log = multi_day_world()
        segmented = SegmentedEventLog.from_log(
            log, boundaries=[0.0, 5.0, 30.0, 50.0]
        )
        assert segmented.boundaries == (0.0, 5.0, 30.0, 50.0)
        assert segmented.materialize().fingerprint() == log.fingerprint()

    def test_rejects_boundaries_missing_the_head(self):
        _, log = multi_day_world()
        with pytest.raises(DataError, match="earliest event"):
            SegmentedEventLog.from_log(log, boundaries=[10.0, 30.0])
        with pytest.raises(DataError, match="at least one"):
            SegmentedEventLog.from_log(log, boundaries=[])

    def test_rejects_non_positive_period(self):
        _, log = multi_day_world()
        with pytest.raises(ValueError, match="segment_hours"):
            SegmentedEventLog.from_log(log, segment_hours=0.0)

    def test_empty_log(self):
        segmented = SegmentedEventLog.from_log(EventLog([]))
        assert len(segmented) == 0
        assert segmented.segment_count == 1
        assert not segmented.has_arrivals()
        assert segmented.start_time() is None
        assert segmented.last_deadline() is None
        assert segmented.max_reachable_km() == 0.0


class TestQueryParity:
    """Every scheduling/payload query matches the materialized log."""

    @pytest.fixture(scope="class")
    def pair(self):
        _, log = multi_day_world()
        return log, SegmentedEventLog.from_log(log, segment_hours=8.0)

    def test_drain_stop(self, pair):
        log, segmented = pair
        times = np.unique(np.concatenate([
            log.times, log.times - 1e-9, log.times + 1e-9, [-1.0, 1e6],
        ]))
        for fire in times:
            cursor = 0
            assert segmented.drain_stop(cursor, float(fire)) == log.drain_stop(
                cursor, float(fire)
            ), fire

    def test_drain_stop_never_moves_backwards(self, pair):
        log, segmented = pair
        mid = len(log) // 2
        assert segmented.drain_stop(mid, -100.0) == mid

    def test_next_count_time(self, pair):
        log, segmented = pair
        limit = float(log.times[-1]) + 10.0
        for cursor in range(0, len(log), 7):
            for count in (1, 5, 50, 10_000):
                assert segmented.next_count_time(
                    cursor, count, limit
                ) == log.next_count_time(cursor, count, limit), (cursor, count)

    def test_next_count_time_respects_limit(self, pair):
        log, segmented = pair
        limit = float(log.times[0])
        assert segmented.next_count_time(0, 10_000, limit) == \
            log.next_count_time(0, 10_000, limit)

    def test_payload_access(self, pair):
        log, segmented = pair
        for index in range(len(log)):
            kind = int(log.kinds[index])
            if kind in (0, 5):  # arrival / relocate
                assert segmented.worker_at(index) == log.worker_at(index)
            elif kind == 1:  # publish
                assert segmented.task_at(index) == log.task_at(index)
        with pytest.raises(IndexError):
            segmented.worker_at(len(log))
        with pytest.raises(IndexError):
            segmented.task_at(-1)

    def test_aggregates(self, pair):
        log, segmented = pair
        assert segmented.start_time() == log.start_time()
        assert segmented.has_arrivals() == log.has_arrivals()
        assert segmented.last_deadline() == log.last_deadline()
        assert segmented.max_reachable_km() == log.max_reachable_km()

    def test_cell_key_counts(self, pair):
        log, segmented = pair
        for cell_km in (2.0, 5.0):
            keys, counts = segmented.cell_key_counts(cell_km)
            expect_keys, expect_counts = log.cell_key_counts(cell_km)
            assert np.array_equal(keys, expect_keys)
            assert np.array_equal(counts, expect_counts)

    def test_slices_cover_exactly(self, pair):
        log, segmented = pair
        covered = 0
        for slab, lo, hi, base in segmented.slices(0, len(log)):
            assert covered == base + lo
            covered = base + hi
            assert np.array_equal(
                slab.times[lo:hi], log.times[base + lo:base + hi]
            )
        assert covered == len(log)
        with pytest.raises(IndexError):
            list(segmented.slices(0, len(log) + 1))


class TestFingerprintChain:
    def test_same_partition_same_chain(self):
        _, log = multi_day_world()
        one = SegmentedEventLog.from_log(log, segment_hours=8.0)
        two = SegmentedEventLog.from_log(log, segment_hours=8.0)
        assert one.fingerprint() == two.fingerprint()
        assert one.segment_fingerprints == two.segment_fingerprints

    def test_partition_changes_the_chain(self):
        _, log = multi_day_world()
        daily = SegmentedEventLog.from_log(log, segment_hours=24.0)
        finer = SegmentedEventLog.from_log(log, segment_hours=8.0)
        assert daily.fingerprint() != finer.fingerprint()
        # And the chain digest is not the materialized hash: the two
        # fingerprint disciplines never collide silently.
        assert daily.fingerprint() != log.fingerprint()

    def test_content_changes_the_chain(self):
        _, log = multi_day_world(seed=23)
        _, other = multi_day_world(seed=24)
        assert SegmentedEventLog.from_log(log).fingerprint() != \
            SegmentedEventLog.from_log(other).fingerprint()


class TestReplayDifferential:
    def test_segmented_replay_is_bit_identical(self):
        base, log = multi_day_world()
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        ).run()
        for segment_hours in (6.0, 8.0, 24.0):
            segmented = SegmentedEventLog.from_log(
                log, segment_hours=segment_hours
            )
            streamed = StreamRuntime(
                NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, segmented,
            ).run()
            assert sorted_pairs(streamed) == sorted_pairs(plain), segment_hours
            assert round_rows(streamed) == round_rows(plain), segment_hours

    def test_minimal_cache_budget_still_exact(self):
        base, log = multi_day_world()
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        ).run()
        segmented = SegmentedEventLog.from_log(
            log, segment_hours=8.0, max_cached=1
        )
        streamed = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, segmented,
        ).run()
        assert sorted_pairs(streamed) == sorted_pairs(plain)
        assert round_rows(streamed) == round_rows(plain)

    @settings(max_examples=10)
    @given(
        world=stream_worlds(max_workers=40, max_tasks=40, multi_day=True),
        segment_hours=st.sampled_from([4.0, 6.0, 8.0, 12.0, 24.0]),
        max_cached=st.integers(1, 3),
    )
    def test_any_partition_replays_identically(
        self, world, segment_hours, max_cached
    ):
        """The property behind the subsystem: *any* time-partition of a log
        — not just day seams — replays bit-identically under any cache
        budget."""
        base, log = world
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        ).run()
        segmented = SegmentedEventLog.from_log(
            log, segment_hours=segment_hours, max_cached=max_cached
        )
        streamed = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
            base, segmented,
        ).run()
        assert sorted_pairs(streamed) == sorted_pairs(plain)
        assert round_rows(streamed) == round_rows(plain)
