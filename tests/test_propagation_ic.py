"""Tests for forward Independent Cascade simulation."""

import numpy as np
import pytest

from repro.propagation import SocialGraph, estimate_informed_probabilities, estimate_spread, simulate_ic


class TestSimulateIC:
    def test_seed_always_informed(self, line_graph, rng):
        informed = simulate_ic(line_graph, seed_index=0, rng=rng)
        assert 0 in informed.tolist()

    def test_isolated_seed_spreads_nowhere(self, rng):
        graph = SocialGraph([0, 1, 2], [(1, 2)])
        informed = simulate_ic(graph, graph.index_of(0), rng)
        assert informed.tolist() == [graph.index_of(0)]

    def test_informed_set_is_connected_reachable(self, rng):
        # Two disconnected components; cascade never crosses.
        graph = SocialGraph(range(6), [(0, 1), (1, 2), (3, 4), (4, 5)])
        for _ in range(20):
            informed = set(simulate_ic(graph, graph.index_of(0), rng).tolist())
            component = {graph.index_of(i) for i in (0, 1, 2)}
            assert informed <= component

    def test_deterministic_chain_with_probability_one(self, rng):
        # Path graph: every internal node has degree 2 -> p = 0.5, but the
        # endpoints have degree 1 -> p = 1.0.  A 2-node graph must always
        # propagate.
        graph = SocialGraph([0, 1], [(0, 1)])
        for _ in range(10):
            informed = simulate_ic(graph, 0, rng)
            assert sorted(informed.tolist()) == [0, 1]


class TestEstimators:
    def test_spread_at_least_one(self, line_graph):
        assert estimate_spread(line_graph, 0, runs=200, seed=1) >= 1.0

    def test_spread_rejects_zero_runs(self, line_graph):
        with pytest.raises(ValueError):
            estimate_spread(line_graph, 0, runs=0)

    def test_probabilities_vector_properties(self, line_graph):
        probs = estimate_informed_probabilities(line_graph, 0, runs=300, seed=2)
        assert probs.shape == (4,)
        assert probs[0] == pytest.approx(1.0)
        assert ((0.0 <= probs) & (probs <= 1.0)).all()

    def test_probabilities_decay_along_path(self):
        graph = SocialGraph(range(5), [(0, 1), (1, 2), (2, 3), (3, 4)])
        probs = estimate_informed_probabilities(graph, 0, runs=3000, seed=3)
        # Monotone decay with distance from the seed.
        assert probs[1] > probs[2] > probs[3] >= probs[4]

    def test_two_node_exact_probability(self):
        graph = SocialGraph([0, 1], [(0, 1)])
        probs = estimate_informed_probabilities(graph, 0, runs=2000, seed=4)
        assert probs[1] == pytest.approx(1.0)  # indeg 1 -> p = 1

    def test_star_center_informs_leaves_with_p_one(self):
        # Star: leaves have degree 1 -> p(center -> leaf) = 1.
        graph = SocialGraph(range(4), [(0, 1), (0, 2), (0, 3)])
        probs = estimate_informed_probabilities(graph, graph.index_of(0), runs=500, seed=5)
        np.testing.assert_allclose(probs, 1.0)

    def test_leaf_informs_center_with_p_third(self):
        # Center has degree 3 -> p(leaf -> center) = 1/3.
        graph = SocialGraph(range(4), [(0, 1), (0, 2), (0, 3)])
        probs = estimate_informed_probabilities(graph, graph.index_of(1), runs=6000, seed=6)
        assert probs[graph.index_of(0)] == pytest.approx(1.0 / 3.0, abs=0.03)
