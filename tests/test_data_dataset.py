"""Tests for the CheckInDataset container."""

import pytest

from repro.data import CheckInDataset, Venue
from repro.entities import CheckIn
from repro.exceptions import DataError
from repro.geo import Point


def make_dataset():
    venues = [
        Venue(venue_id=0, location=Point(0, 0), categories=("cafe",)),
        Venue(venue_id=1, location=Point(5, 5), categories=("bar",)),
    ]
    checkins = [
        CheckIn(user_id=1, venue_id=0, location=Point(0, 0), time=30.0),
        CheckIn(user_id=2, venue_id=1, location=Point(5, 5), time=2.0),
        CheckIn(user_id=1, venue_id=1, location=Point(5, 5), time=26.0),
    ]
    return CheckInDataset.build(
        name="test",
        venues=venues,
        checkins=checkins,
        social_edges=[(1, 2)],
    )


class TestCheckInDataset:
    def test_checkins_sorted_by_time(self):
        ds = make_dataset()
        assert [c.time for c in ds.checkins] == [2.0, 26.0, 30.0]

    def test_counts(self):
        ds = make_dataset()
        assert ds.num_users == 2
        assert ds.num_venues == 2
        assert ds.num_checkins == 3
        assert ds.num_days == 2  # last check-in at t=30 -> day 1

    def test_user_ids_inferred(self):
        assert make_dataset().user_ids == (1, 2)

    def test_checkins_by_user(self):
        ds = make_dataset()
        times = [c.time for c in ds.checkins_by_user(1)]
        assert times == [26.0, 30.0]
        assert ds.checkins_by_user(99) == []

    def test_checkins_on_day(self):
        ds = make_dataset()
        assert len(ds.checkins_on_day(0)) == 1
        assert len(ds.checkins_on_day(1)) == 2
        assert ds.checkins_on_day(5) == []
        assert ds.active_days() == [0, 1]

    def test_bounding_box_covers_venues(self):
        box = make_dataset().bounding_box()
        assert box.contains(Point(0, 0)) and box.contains(Point(5, 5))

    def test_describe_mentions_name(self):
        assert "test" in make_dataset().describe()

    def test_rejects_unknown_venue(self):
        with pytest.raises(DataError):
            CheckInDataset.build(
                name="bad",
                venues=[],
                checkins=[CheckIn(user_id=1, venue_id=0, location=Point(0, 0), time=0.0)],
                social_edges=[],
            )

    def test_rejects_edge_to_unknown_user(self):
        with pytest.raises(DataError):
            CheckInDataset.build(
                name="bad",
                venues=[Venue(venue_id=0, location=Point(0, 0), categories=())],
                checkins=[CheckIn(user_id=1, venue_id=0, location=Point(0, 0), time=0.0)],
                social_edges=[(1, 99)],
            )

    def test_rejects_empty_checkins(self):
        with pytest.raises(DataError):
            CheckInDataset.build(name="bad", venues=[], checkins=[], social_edges=[])
