"""Tests for repro.stream.scheduler — micro-batch trigger policies."""

import pytest

from repro.stream import (
    AdaptiveTrigger,
    CountTrigger,
    HybridTrigger,
    TimeWindowTrigger,
)
from repro.stream.metrics import RoundRecord


def make_record(round_seconds=0.0, index=0, time=0.0):
    return RoundRecord(
        index=index, time=time, online_workers=0, open_tasks=0, drained_events=0,
        assigned=0, expired_tasks=0, churned_workers=0, cancelled_tasks=0,
        round_seconds=round_seconds,
    )


class TestCountTrigger:
    def test_counts_but_schedules_no_boundary(self):
        trigger = CountTrigger(5)
        assert trigger.count == 5
        assert trigger.next_boundary(3.0) is None
        assert not trigger.fires_at_start

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CountTrigger(0)

    def test_stateless_checkpointing(self):
        trigger = CountTrigger(5)
        assert trigger.state_dict() == {}
        trigger.load_state_dict({})  # no-op


class TestTimeWindowTrigger:
    def test_boundary_marches_by_window(self):
        trigger = TimeWindowTrigger(1.5)
        assert trigger.next_boundary(0.0) == pytest.approx(1.5)
        assert trigger.next_boundary(6.0) == pytest.approx(7.5)
        assert trigger.count is None
        assert trigger.fires_at_start

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TimeWindowTrigger(0.0)


class TestHybridTrigger:
    def test_arms_both_mechanisms(self):
        trigger = HybridTrigger(10, 2.0)
        assert trigger.count == 10
        assert trigger.next_boundary(4.0) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridTrigger(0, 1.0)
        with pytest.raises(ValueError):
            HybridTrigger(1, 0.0)

    def test_repr_smoke(self):
        assert "HybridTrigger" in repr(HybridTrigger(3, 1.0))
        assert "CountTrigger" in repr(CountTrigger(3))
        assert "TimeWindowTrigger" in repr(TimeWindowTrigger(1.0))
        assert "AdaptiveTrigger" in repr(AdaptiveTrigger(0.1))


class TestAdaptiveTrigger:
    def test_halves_over_budget_grows_under(self):
        trigger = AdaptiveTrigger(
            target_seconds=1.0, initial_window_hours=2.0,
            min_window_hours=0.25, max_window_hours=8.0, growth=2.0,
        )
        trigger.on_round(make_record(round_seconds=1.5))
        assert trigger.window_hours == pytest.approx(1.0)
        trigger.on_round(make_record(round_seconds=0.1))
        assert trigger.window_hours == pytest.approx(2.0)
        # Inside the comfort band: unchanged.
        trigger.on_round(make_record(round_seconds=0.75))
        assert trigger.window_hours == pytest.approx(2.0)

    def test_clamped_to_bounds(self):
        trigger = AdaptiveTrigger(
            target_seconds=1.0, initial_window_hours=0.5,
            min_window_hours=0.4, max_window_hours=0.6,
        )
        trigger.on_round(make_record(round_seconds=5.0))
        assert trigger.window_hours == pytest.approx(0.4)
        for _ in range(5):
            trigger.on_round(make_record(round_seconds=0.0))
        assert trigger.window_hours == pytest.approx(0.6)

    def test_custom_cost_source(self):
        trigger = AdaptiveTrigger(
            target_seconds=10.0, initial_window_hours=1.0,
            cost_of=lambda record: record.open_tasks,
        )
        record = RoundRecord(
            index=0, time=0.0, online_workers=0, open_tasks=50, drained_events=0,
            assigned=0, expired_tasks=0, churned_workers=0, cancelled_tasks=0,
            round_seconds=0.0,
        )
        trigger.on_round(record)
        assert trigger.window_hours == pytest.approx(0.5)

    def test_state_dict_roundtrip(self):
        trigger = AdaptiveTrigger(target_seconds=1.0, initial_window_hours=2.0)
        trigger.on_round(make_record(round_seconds=9.0))
        state = trigger.state_dict()
        fresh = AdaptiveTrigger(target_seconds=1.0, initial_window_hours=2.0)
        fresh.load_state_dict(state)
        assert fresh.window_hours == trigger.window_hours

    def test_load_state_dict_clamps_to_bounds(self):
        trigger = AdaptiveTrigger(
            target_seconds=1.0, initial_window_hours=0.5,
            min_window_hours=0.4, max_window_hours=0.6,
        )
        trigger.load_state_dict({"window_hours": 5.0})
        assert trigger.window_hours == pytest.approx(0.6)
        trigger.load_state_dict({"window_hours": 0.01})
        assert trigger.window_hours == pytest.approx(0.4)
        # In-range values restore verbatim.
        trigger.load_state_dict({"window_hours": 0.45})
        assert trigger.window_hours == pytest.approx(0.45)

    def test_load_state_dict_rejects_bad_windows(self):
        from repro.exceptions import DataError

        trigger = AdaptiveTrigger(target_seconds=1.0, initial_window_hours=2.0)
        for bad in (float("nan"), float("inf"), float("-inf"), 0.0, -1.0):
            with pytest.raises(DataError, match="window_hours"):
                trigger.load_state_dict({"window_hours": bad})
        assert trigger.window_hours == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTrigger(target_seconds=0.0)
        with pytest.raises(ValueError):
            AdaptiveTrigger(target_seconds=1.0, initial_window_hours=0.1,
                            min_window_hours=0.5)
        with pytest.raises(ValueError):
            AdaptiveTrigger(target_seconds=1.0, growth=1.0)
