"""Tests for the per-day SC instance builder."""

import pytest

from repro.data import InstanceBuilder
from repro.exceptions import DataError


class TestInstanceBuilder:
    def test_day_without_checkins_raises(self, tiny_dataset):
        builder = InstanceBuilder(tiny_dataset)
        with pytest.raises(DataError):
            builder.build_day(day=9999)

    def test_invalid_parameters_rejected(self, tiny_dataset):
        with pytest.raises(DataError):
            InstanceBuilder(tiny_dataset, valid_hours=-1.0)
        with pytest.raises(DataError):
            InstanceBuilder(tiny_dataset, reachable_km=-5.0)

    def test_tasks_are_days_venues(self, tiny_dataset, tiny_builder):
        day = 6
        instance = tiny_builder.build_day(day)
        venues_today = {c.venue_id for c in tiny_dataset.checkins_on_day(day)}
        assert {t.task_id for t in instance.tasks} == venues_today

    def test_task_publication_is_earliest_checkin_of_day(self, tiny_dataset, tiny_builder):
        day = 6
        instance = tiny_builder.build_day(day)
        for task in instance.tasks:
            times = [
                c.time for c in tiny_dataset.checkins_on_day(day)
                if c.venue_id == task.task_id
            ]
            assert task.publication_time == pytest.approx(min(times))

    def test_workers_are_days_active_users(self, tiny_dataset, tiny_builder):
        day = 6
        instance = tiny_builder.build_day(day)
        active = {c.user_id for c in tiny_dataset.checkins_on_day(day)}
        assert {w.worker_id for w in instance.workers} == active

    def test_worker_location_is_latest_past_checkin(self, tiny_dataset, tiny_builder):
        day = 6
        instance = tiny_builder.build_day(day)
        cutoff = 24.0 * day
        for worker in instance.workers[:10]:
            past = [c for c in tiny_dataset.checkins_by_user(worker.worker_id) if c.time < cutoff]
            if past:
                assert worker.location == past[-1].location

    def test_histories_strictly_before_day(self, tiny_builder):
        day = 6
        instance = tiny_builder.build_day(day)
        cutoff = 24.0 * day
        for history in instance.histories.values():
            for record in history:
                assert record.arrival_time < cutoff

    def test_all_users_have_history_entries(self, tiny_dataset, tiny_builder):
        instance = tiny_builder.build_day(6)
        assert set(instance.histories) == set(tiny_dataset.user_ids)

    def test_sampling_caps_and_subsets(self, tiny_builder):
        full = tiny_builder.build_day(6)
        sampled = tiny_builder.build_day(6, num_tasks=5, num_workers=7, seed=3)
        assert sampled.num_tasks == 5
        assert sampled.num_workers == 7
        assert {t.task_id for t in sampled.tasks} <= {t.task_id for t in full.tasks}
        # Oversized requests are capped at availability.
        capped = tiny_builder.build_day(6, num_tasks=10**6, num_workers=10**6)
        assert capped.num_tasks == full.num_tasks
        assert capped.num_workers == full.num_workers

    def test_sampling_deterministic_by_seed(self, tiny_builder):
        a = tiny_builder.build_day(6, num_tasks=5, seed=3)
        b = tiny_builder.build_day(6, num_tasks=5, seed=3)
        c = tiny_builder.build_day(6, num_tasks=5, seed=4)
        assert [t.task_id for t in a.tasks] == [t.task_id for t in b.tasks]
        assert [t.task_id for t in a.tasks] != [t.task_id for t in c.tasks]

    def test_parameter_overrides(self, tiny_builder):
        instance = tiny_builder.build_day(6, valid_hours=2.5, reachable_km=7.0)
        assert all(t.valid_hours == 2.5 for t in instance.tasks)
        assert all(w.reachable_km == 7.0 for w in instance.workers)

    def test_venue_visits_reflect_history(self, tiny_dataset, tiny_builder):
        day = 6
        instance = tiny_builder.build_day(day)
        cutoff = 24.0 * day
        expected_total = sum(1 for c in tiny_dataset.checkins if c.time < cutoff)
        got_total = sum(
            count
            for per_user in instance.venue_visits.values()
            for count in per_user.values()
        )
        assert got_total == expected_total

    def test_richest_days_sorted_and_skip_day_zero(self, tiny_builder):
        days = tiny_builder.richest_days(count=3)
        assert days == sorted(days)
        assert all(d >= 1 for d in days)
        assert len(days) == 3

    def test_with_tasks_and_with_workers_views(self, tiny_builder):
        instance = tiny_builder.build_day(6)
        fewer_tasks = instance.with_tasks(instance.tasks[:3])
        assert fewer_tasks.num_tasks == 3
        assert fewer_tasks.num_workers == instance.num_workers
        fewer_workers = instance.with_workers(instance.workers[:2])
        assert fewer_workers.num_workers == 2
        assert fewer_workers.num_tasks == instance.num_tasks

    def test_history_of_unknown_worker_is_empty(self, tiny_builder):
        instance = tiny_builder.build_day(6)
        history = instance.history_of(10**9)
        assert len(history) == 0


class TestSearchsortedDayIndex:
    """The per-user/per-venue day index must reproduce the historical
    full-scan semantics exactly, across a multi-day sweep."""

    def _brute_force_histories(self, dataset, cutoff):
        per_user = {}
        for checkin in dataset.checkins:
            if checkin.time >= cutoff:
                break
            per_user.setdefault(checkin.user_id, []).append(checkin)
        return per_user

    def _brute_force_visits(self, dataset, cutoff):
        visits = {}
        for checkin in dataset.checkins:
            if checkin.time >= cutoff:
                break
            per_user = visits.setdefault(checkin.venue_id, {})
            per_user[checkin.user_id] = per_user.get(checkin.user_id, 0) + 1
        return visits

    def test_multi_day_sweep_matches_full_scan(self, tiny_dataset):
        builder = InstanceBuilder(tiny_dataset)
        days = tiny_dataset.num_days
        for day in sorted(set([1, 3, days // 2, days - 1])):
            if not tiny_dataset.checkins_on_day(day):
                continue
            cutoff = 24.0 * day
            instance = builder.build_day(day)
            expected = self._brute_force_histories(tiny_dataset, cutoff)
            for user_id in tiny_dataset.user_ids:
                performed = instance.histories[user_id].performed
                checkins = expected.get(user_id, [])
                assert len(performed) == len(checkins)
                for task, checkin in zip(performed, checkins):
                    assert task.arrival_time == checkin.time
                    assert task.venue_id == checkin.venue_id
                    assert task.location == checkin.location
            assert instance.venue_visits == self._brute_force_visits(
                tiny_dataset, cutoff
            )

    def test_sweep_descending_days_unaffected_by_cache(self, tiny_dataset):
        """The index is immutable: visiting days out of order must give the
        same instances as two fresh builders visiting them in order."""
        shared = InstanceBuilder(tiny_dataset)
        days = [d for d in (6, 2, 9) if tiny_dataset.checkins_on_day(d)]
        for day in days:
            fresh = InstanceBuilder(tiny_dataset)
            from_shared = shared.build_day(day)
            from_fresh = fresh.build_day(day)
            assert from_shared.venue_visits == from_fresh.venue_visits
            for user_id in tiny_dataset.user_ids:
                assert (
                    [p.arrival_time for p in from_shared.histories[user_id].performed]
                    == [p.arrival_time for p in from_fresh.histories[user_id].performed]
                )

    def test_worker_location_at_matches_linear_scan(self, tiny_dataset):
        builder = InstanceBuilder(tiny_dataset)
        for user_id in list(tiny_dataset.user_ids)[:10]:
            checkins = tiny_dataset.checkins_by_user(user_id)
            for cutoff in (0.0, 24.0, 24.0 * 5, 24.0 * 100):
                expected = None
                for checkin in checkins:
                    if checkin.time >= cutoff:
                        break
                    expected = checkin.location
                assert builder.worker_location_at(user_id, cutoff) == expected

    def test_histories_do_not_leak_future_checkins(self, tiny_dataset):
        builder = InstanceBuilder(tiny_dataset)
        early = builder.build_day(2)
        late = builder.build_day(9)
        cutoff = 24.0 * 2
        for user_id in tiny_dataset.user_ids:
            assert all(
                p.arrival_time < cutoff
                for p in early.histories[user_id].performed
            )
            # Building a later day must not mutate the earlier histories.
            assert all(
                p.arrival_time < cutoff
                for p in early.histories[user_id].performed
            )
        assert len(late.histories) == len(early.histories)
