"""Tests for repro.obs.trace — span recording and trace-event schema."""

import json

import pytest

from repro.exceptions import DataError
from repro.obs.trace import NULL_TRACER, Tracer, validate_trace_events


class TestTracer:
    def test_span_context_manager_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("solve", cat="shard", shard=3) as span:
            span.note(pairs=17)
        (event,) = tracer.events()
        assert event["name"] == "solve"
        assert event["ph"] == "X"
        assert event["cat"] == "shard"
        assert event["dur"] >= 0.0
        assert event["args"] == {"shard": 3, "pairs": 17}

    def test_complete_attributes_worker_pid_tid(self):
        """Spans shipped back from pool workers keep the worker's timeline."""
        tracer = Tracer()
        start = tracer.epoch_ns + 1_000
        tracer.complete(
            "shard.solve", start, start + 2_000,
            cat="shard", pid=4242, tid=7, args={"shard": 1},
        )
        (event,) = tracer.events()
        assert event["pid"] == 4242
        assert event["tid"] == 7
        assert event["ts"] == pytest.approx(1.0)  # µs past the epoch
        assert event["dur"] == pytest.approx(2.0)

    def test_instant_is_process_scoped(self):
        tracer = Tracer()
        tracer.instant("admission.diverted", cat="admission",
                       args={"deferred": 2})
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["s"] == "p"
        assert event["args"] == {"deferred": 2}

    def test_payload_has_process_metadata_and_validates(self):
        tracer = Tracer(process_name="unit-test")
        with tracer.span("round"):
            pass
        tracer.instant("tick")
        payload = tracer.to_payload()
        metadata = payload["traceEvents"][0]
        assert metadata["ph"] == "M"
        assert metadata["args"]["name"] == "unit-test"
        assert payload["displayTimeUnit"] == "ms"
        validate_trace_events(payload)

    def test_write_round_trips_through_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("round", round=0):
            pass
        path = tracer.write(tmp_path / "trace.json")
        validate_trace_events(json.loads(path.read_text()))

    def test_null_tracer_records_nothing(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("round") as span:
            span.note(x=1)
        NULL_TRACER.instant("tick")
        NULL_TRACER.complete("x", 0, 1)
        assert NULL_TRACER.events() == []


class TestValidation:
    @staticmethod
    def base_event(**overrides):
        event = {"name": "x", "ph": "X", "ts": 0.0, "dur": 1.0,
                 "pid": 1, "tid": 1}
        event.update(overrides)
        return event

    def test_rejects_non_object_payload(self):
        with pytest.raises(DataError):
            validate_trace_events([])
        with pytest.raises(DataError):
            validate_trace_events({"events": []})
        with pytest.raises(DataError):
            validate_trace_events({"traceEvents": "nope"})

    def test_accepts_the_emitted_shapes(self):
        validate_trace_events({"traceEvents": [
            self.base_event(),
            self.base_event(ph="i", s="g"),
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "x"}},
        ]})

    @pytest.mark.parametrize("corrupt", [
        lambda e: e.pop("name"),
        lambda e: e.update(name=""),
        lambda e: e.pop("pid"),
        lambda e: e.update(ph="B"),
        lambda e: e.update(pid="main"),
        lambda e: e.update(dur=-1.0),
        lambda e: e.pop("dur"),
        lambda e: e.update(ts="soon"),
        lambda e: e.update(ph="i", s="q"),
        lambda e: e.update(args=[1, 2]),
    ])
    def test_rejects_corrupted_events(self, corrupt):
        event = self.base_event()
        corrupt(event)
        with pytest.raises(DataError):
            validate_trace_events({"traceEvents": [event]})

    def test_error_names_the_offending_position(self):
        with pytest.raises(DataError, match=r"traceEvents\[1\]"):
            validate_trace_events(
                {"traceEvents": [self.base_event(), {"ph": "X"}]}
            )
