"""Tests for repro.geo.bbox."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import BoundingBox, Point


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.center == Point(2.0, 1.5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(5, 0, 0, 5)

    def test_zero_area_allowed(self):
        box = BoundingBox(1, 1, 1, 1)
        assert box.width == 0 and box.contains(Point(1, 1))

    def test_contains_border_inclusive(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(10, 10))
        assert not box.contains(Point(10.001, 5))

    def test_clamp(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.clamp(Point(-5, 5)) == Point(0, 5)
        assert box.clamp(Point(20, -3)) == Point(10, 0)
        assert box.clamp(Point(3, 4)) == Point(3, 4)

    def test_expanded(self):
        box = BoundingBox(0, 0, 2, 2).expanded(1.0)
        assert box.min_x == -1 and box.max_y == 3

    def test_around(self):
        box = BoundingBox.around([Point(1, 5), Point(-2, 3), Point(4, 4)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, 3, 4, 5)

    def test_around_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.around([])

    def test_square(self):
        box = BoundingBox.square(7.0)
        assert box.width == box.height == 7.0

    def test_square_rejects_non_positive(self):
        with pytest.raises(ValueError):
            BoundingBox.square(0)

    @given(st.lists(st.tuples(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3)), min_size=1, max_size=20))
    def test_around_contains_all_points(self, coords):
        points = [Point(x, y) for x, y in coords]
        box = BoundingBox.around(points)
        assert all(box.contains(p) for p in points)

    @given(
        st.floats(-100, 100), st.floats(-100, 100),
        st.floats(-500, 500), st.floats(-500, 500),
    )
    def test_clamp_result_always_inside(self, min_x, min_y, px, py):
        box = BoundingBox(min_x, min_y, min_x + 50, min_y + 50)
        assert box.contains(box.clamp(Point(px, py)))
