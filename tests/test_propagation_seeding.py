"""Tests for repro.propagation.seeding — greedy RIS influence maximization."""

import itertools

import numpy as np
import pytest

from repro.propagation import (
    RRRCollection,
    SocialGraph,
    sample_rrr_sets,
    select_seeds,
    spread_of_seeds,
)


def collection_from_sets(num_workers, sets):
    """Build a collection with explicit member sets; root = first member."""
    collection = RRRCollection(num_workers=num_workers)
    roots = np.array([s[0] for s in sets], dtype=np.int64)
    members = [np.sort(np.array(s, dtype=np.int64)) for s in sets]
    collection.extend(roots, members)
    return collection


@pytest.fixture()
def ba_collection() -> RRRCollection:
    """RRR sets over a modest scale-free-ish graph."""
    rng = np.random.default_rng(7)
    edges = {(int(a), int(b)) for a, b in rng.integers(0, 40, size=(150, 2)) if a != b}
    graph = SocialGraph(range(40), edges)
    collection = RRRCollection(num_workers=40)
    roots, members = sample_rrr_sets(graph, 4000, rng)
    collection.extend(roots, members)
    return collection


class TestSelectSeeds:
    def test_rejects_bad_k(self, ba_collection):
        with pytest.raises(ValueError):
            select_seeds(ba_collection, 0)

    def test_rejects_empty_collection(self):
        with pytest.raises(ValueError):
            select_seeds(RRRCollection(num_workers=5), 1)

    def test_first_seed_is_greedy_informed_worker(self, ba_collection):
        result = select_seeds(ba_collection, 1)
        assert result.seeds[0] == ba_collection.greedy_informed_worker()

    def test_marginals_non_increasing(self, ba_collection):
        result = select_seeds(ba_collection, 10)
        assert list(result.marginal_coverage) == sorted(
            result.marginal_coverage, reverse=True
        )

    def test_no_duplicate_seeds(self, ba_collection):
        result = select_seeds(ba_collection, 15)
        assert len(set(result.seeds)) == len(result.seeds)

    def test_spread_matches_spread_of_seeds(self, ba_collection):
        result = select_seeds(ba_collection, 5)
        assert result.estimated_spread == pytest.approx(
            spread_of_seeds(ba_collection, list(result.seeds))
        )

    def test_k_capped_at_population(self):
        collection = collection_from_sets(3, [[0], [1], [2]])
        result = select_seeds(collection, 100)
        assert set(result.seeds) == {0, 1, 2}

    def test_stops_when_everything_covered(self):
        # Worker 0 covers both sets; adding more seeds gains nothing.
        collection = collection_from_sets(4, [[0, 1], [0, 2]])
        result = select_seeds(collection, 4)
        assert result.seeds == (0,)
        assert result.marginal_coverage == (1 + 1,)

    def test_greedy_matches_exhaustive_on_small_cases(self):
        """Greedy with k=2 achieves >= (1 - 1/e) of the best pair — on
        these tiny hand cases it is in fact optimal."""
        sets = [[0, 1], [1, 2], [2, 3], [3, 0], [1, 3], [0, 2]]
        collection = collection_from_sets(4, sets)
        result = select_seeds(collection, 2)
        greedy_spread = result.estimated_spread

        best = 0.0
        for pair in itertools.combinations(range(4), 2):
            best = max(best, spread_of_seeds(collection, list(pair)))
        assert greedy_spread == pytest.approx(best)

    def test_lazy_evaluation_matches_naive_greedy(self, ba_collection):
        """CELF must pick exactly the naive greedy sequence (ties by index)."""
        membership = ba_collection.membership_matrix().tocsr()
        covered = np.zeros(len(ba_collection), dtype=bool)
        expected = []
        for _ in range(8):
            gains = np.zeros(ba_collection.num_workers, dtype=int)
            for worker in range(ba_collection.num_workers):
                row = membership.indices[
                    membership.indptr[worker]: membership.indptr[worker + 1]
                ]
                gains[worker] = np.count_nonzero(~covered[row])
            for already in expected:
                gains[already] = -1
            best = int(np.argmax(gains))  # argmax ties -> smallest index
            if gains[best] <= 0:
                break
            expected.append(best)
            row = membership.indices[membership.indptr[best]: membership.indptr[best + 1]]
            covered[row] = True
        result = select_seeds(ba_collection, 8)
        assert list(result.seeds) == expected


class TestSpreadOfSeeds:
    def test_empty_collection_is_zero(self):
        assert spread_of_seeds(RRRCollection(num_workers=4), [0]) == 0.0

    def test_out_of_range_seed_rejected(self):
        collection = collection_from_sets(3, [[0]])
        with pytest.raises(ValueError):
            spread_of_seeds(collection, [7])

    def test_monotone_in_seeds(self, ba_collection):
        spread_1 = spread_of_seeds(ba_collection, [0])
        spread_2 = spread_of_seeds(ba_collection, [0, 1])
        assert spread_2 >= spread_1

    def test_single_seed_equals_sigma(self, ba_collection):
        """Coverage by one seed is exactly Definition 6's sigma estimate."""
        for worker in (0, 5, 17):
            assert spread_of_seeds(ba_collection, [worker]) == pytest.approx(
                ba_collection.sigma(worker)
            )
