"""Tests for repro.data.writers — SNAP-format export and round-trip."""

import itertools

import pytest

from repro.data import load_dataset_from_snap
from repro.data.writers import save_dataset_to_snap


@pytest.fixture(scope="module")
def roundtrip(tmp_path_factory, request):
    """Write the tiny dataset and load it back."""
    dataset = request.getfixturevalue("tiny_dataset")
    directory = tmp_path_factory.mktemp("snapworld")
    paths = save_dataset_to_snap(dataset, directory)
    loaded = load_dataset_from_snap(
        name="roundtrip",
        edges_path=paths["edges"],
        checkins_path=paths["checkins"],
        categories_path=paths["categories"],
    )
    return dataset, loaded


class TestSaveDatasetToSnap:
    def test_writes_three_files(self, tiny_dataset, tmp_path):
        paths = save_dataset_to_snap(tiny_dataset, tmp_path / "world")
        assert set(paths) == {"edges", "checkins", "categories"}
        for path in paths.values():
            assert path.exists()
            assert path.stat().st_size > 0

    def test_populations_preserved(self, roundtrip):
        original, loaded = roundtrip
        assert loaded.num_users == original.num_users
        # SNAP files only describe venues through check-ins, so venues that
        # were never visited cannot survive the round-trip.
        visited = {c.venue_id for c in original.checkins}
        assert loaded.num_venues == len(visited)
        assert loaded.num_checkins == original.num_checkins
        assert len(loaded.social_edges) == len(original.social_edges)

    def test_social_edges_preserved(self, roundtrip):
        original, loaded = roundtrip
        normalize = lambda edges: {(min(u, v), max(u, v)) for u, v in edges}
        assert normalize(loaded.social_edges) == normalize(original.social_edges)

    def test_pairwise_distances_preserved(self, roundtrip):
        """The loader re-centres coordinates; geometry must be invariant."""
        original, loaded = roundtrip
        original_venues = sorted(original.venues)
        loaded_venues = sorted(loaded.venues)
        # Venue ids may be renumbered in check-in order; map through the
        # check-in streams (same order by construction).
        pairs = list(zip(original.checkins, loaded.checkins))
        sample = pairs[:: max(1, len(pairs) // 25)]
        for (a1, b1), (a2, b2) in itertools.combinations(sample, 2):
            d_original = a1.location.distance_to(a2.location)
            d_loaded = b1.location.distance_to(b2.location)
            assert d_loaded == pytest.approx(d_original, abs=0.05), (
                d_original, d_loaded,
            )

    def test_time_order_and_gaps_preserved(self, roundtrip):
        original, loaded = roundtrip
        original_times = [c.time for c in original.checkins]
        loaded_times = [c.time for c in loaded.checkins]
        base_original = original_times[0]
        base_loaded = loaded_times[0]
        for t_original, t_loaded in zip(
            original_times[:: max(1, len(original_times) // 50)],
            loaded_times[:: max(1, len(loaded_times) // 50)],
        ):
            assert t_loaded - base_loaded == pytest.approx(
                t_original - base_original, abs=1.0 / 3600.0 + 1e-9
            )

    def test_categories_preserved(self, roundtrip):
        original, loaded = roundtrip
        for c_original, c_loaded in zip(original.checkins, loaded.checkins):
            assert c_loaded.categories == c_original.categories
