"""Tests for the corpus/vocabulary substrate."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.text import Corpus, Vocabulary


class TestVocabulary:
    def test_add_assigns_dense_ids(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0  # idempotent
        assert len(vocab) == 2

    def test_lookup(self):
        vocab = Vocabulary(["x", "y"])
        assert vocab.id_of("y") == 1
        assert vocab.word_of(0) == "x"
        assert vocab.get("z") is None
        assert "x" in vocab and "z" not in vocab
        with pytest.raises(KeyError):
            vocab.id_of("z")

    def test_iteration_order(self):
        vocab = Vocabulary(["c", "a", "b"])
        assert list(vocab) == ["c", "a", "b"]


class TestCorpus:
    def test_builds_vocabulary(self):
        corpus = Corpus([["a", "b"], ["b", "c", "c"]])
        assert corpus.num_words == 3
        assert len(corpus) == 2
        assert corpus.num_tokens == 5

    def test_count_matrix(self):
        corpus = Corpus([["a", "b"], ["b", "b"]])
        matrix = corpus.count_matrix()
        assert matrix.shape == (2, 2)
        a_id = corpus.vocabulary.id_of("a")
        b_id = corpus.vocabulary.id_of("b")
        assert matrix[0, a_id] == 1 and matrix[0, b_id] == 1
        assert matrix[1, b_id] == 2
        assert matrix.sum() == corpus.num_tokens

    def test_empty_documents_allowed(self):
        corpus = Corpus([[], ["a"], []])
        assert len(corpus) == 3
        assert corpus.count_matrix()[0].sum() == 0

    def test_all_empty_raises(self):
        with pytest.raises(DataError):
            Corpus([[], []])

    def test_frozen_vocabulary_drops_oov(self):
        vocab = Vocabulary(["a", "b"])
        corpus = Corpus([["a", "zzz", "b"]], vocabulary=vocab)
        assert corpus.num_tokens == 2
        assert len(vocab) == 2  # unchanged

    def test_encode_drops_unknown_words(self):
        corpus = Corpus([["a", "b"]])
        encoded = corpus.encode(["b", "mystery", "a", "a"])
        decoded = [corpus.vocabulary.word_of(i) for i in encoded]
        assert decoded == ["b", "a", "a"]
        assert corpus.encode(["mystery"]).size == 0
