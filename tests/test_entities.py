"""Tests for repro.entities (tasks, workers, check-ins, records, assignments)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.entities import (
    Assignment,
    CheckIn,
    PerformedTask,
    Task,
    TaskHistory,
    Worker,
)
from repro.geo import Point


class TestTask:
    def make(self, **kw):
        defaults = dict(
            task_id=1, location=Point(0, 0), publication_time=10.0, valid_hours=5.0,
            categories=("cafe",), venue_id=7,
        )
        defaults.update(kw)
        return Task(**defaults)

    def test_expiry_time(self):
        assert self.make().expiry_time == 15.0

    def test_is_expired_at(self):
        task = self.make()
        assert not task.is_expired_at(15.0)  # deadline inclusive
        assert task.is_expired_at(15.001)

    def test_rejects_negative_validity(self):
        with pytest.raises(ValueError):
            self.make(valid_hours=-1.0)

    def test_with_valid_hours_returns_copy(self):
        task = self.make()
        other = task.with_valid_hours(2.0)
        assert other.valid_hours == 2.0
        assert task.valid_hours == 5.0
        assert other.task_id == task.task_id and other.categories == task.categories

    def test_frozen(self):
        with pytest.raises(AttributeError):
            self.make().valid_hours = 3.0  # type: ignore[misc]


class TestWorker:
    def test_can_reach_border_inclusive(self):
        worker = Worker(worker_id=1, location=Point(0, 0), reachable_km=5.0)
        assert worker.can_reach(Point(5.0, 0.0))
        assert not worker.can_reach(Point(5.01, 0.0))

    def test_travel_hours(self):
        worker = Worker(worker_id=1, location=Point(0, 0), reachable_km=5.0, speed_kmh=10.0)
        assert worker.travel_hours_to(Point(5, 0)) == pytest.approx(0.5)

    def test_default_speed_is_paper_value(self):
        assert Worker(worker_id=0, location=Point(0, 0), reachable_km=1.0).speed_kmh == 5.0

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            Worker(worker_id=1, location=Point(0, 0), reachable_km=-1.0)

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            Worker(worker_id=1, location=Point(0, 0), reachable_km=1.0, speed_kmh=0.0)

    def test_with_radius_and_moved_to(self):
        worker = Worker(worker_id=1, location=Point(0, 0), reachable_km=5.0)
        assert worker.with_radius(9.0).reachable_km == 9.0
        assert worker.moved_to(Point(1, 1)).location == Point(1, 1)
        assert worker.reachable_km == 5.0  # original untouched


class TestCheckIn:
    def test_day_and_hour(self):
        checkin = CheckIn(user_id=1, venue_id=2, location=Point(0, 0), time=50.0)
        assert checkin.day == 2
        assert checkin.hour_of_day == pytest.approx(2.0)

    @given(st.floats(min_value=0, max_value=10000))
    def test_day_hour_roundtrip(self, time):
        checkin = CheckIn(user_id=0, venue_id=0, location=Point(0, 0), time=time)
        assert checkin.day * 24.0 + checkin.hour_of_day == pytest.approx(time)
        assert 0.0 <= checkin.hour_of_day < 24.0 or checkin.hour_of_day == pytest.approx(24.0)


class TestPerformedTask:
    def test_rejects_completion_before_arrival(self):
        with pytest.raises(ValueError):
            PerformedTask(location=Point(0, 0), arrival_time=5.0, completion_time=4.0)


class TestTaskHistory:
    def test_sorts_chronologically(self):
        history = TaskHistory(
            worker_id=1,
            performed=[
                PerformedTask(location=Point(1, 0), arrival_time=5.0, completion_time=5.0),
                PerformedTask(location=Point(0, 0), arrival_time=1.0, completion_time=1.0),
            ],
        )
        assert [p.arrival_time for p in history] == [1.0, 5.0]
        assert history.locations == [Point(0, 0), Point(1, 0)]

    def test_add_keeps_order(self):
        history = TaskHistory(worker_id=1, performed=[])
        history.add(PerformedTask(location=Point(1, 1), arrival_time=3.0, completion_time=3.0))
        history.add(PerformedTask(location=Point(2, 2), arrival_time=1.0, completion_time=1.0))
        assert [p.arrival_time for p in history] == [1.0, 3.0]

    def test_category_document_concatenates_in_order(self):
        history = TaskHistory(
            worker_id=1,
            performed=[
                PerformedTask(
                    location=Point(0, 0), arrival_time=2.0, completion_time=2.0,
                    categories=("bar", "pub"),
                ),
                PerformedTask(
                    location=Point(0, 0), arrival_time=1.0, completion_time=1.0,
                    categories=("cafe",),
                ),
            ],
        )
        assert history.category_document == ["cafe", "bar", "pub"]

    def test_venue_visit_counts(self):
        history = TaskHistory(
            worker_id=1,
            performed=[
                PerformedTask(location=Point(0, 0), arrival_time=1.0, completion_time=1.0, venue_id=4),
                PerformedTask(location=Point(0, 0), arrival_time=2.0, completion_time=2.0, venue_id=4),
                PerformedTask(location=Point(0, 0), arrival_time=3.0, completion_time=3.0, venue_id=9),
                PerformedTask(location=Point(0, 0), arrival_time=4.0, completion_time=4.0, venue_id=None),
            ],
        )
        assert history.venue_visit_counts() == {4: 2, 9: 1}

    def test_empty_history(self):
        history = TaskHistory(worker_id=1, performed=[])
        assert len(history) == 0
        assert history.category_document == []
        assert history.locations == []


class TestAssignment:
    def make_pair(self, task_id, worker_id):
        task = Task(task_id=task_id, location=Point(0, 0), publication_time=0.0, valid_hours=1.0)
        worker = Worker(worker_id=worker_id, location=Point(3, 4), reachable_km=10.0)
        return task, worker

    def test_add_and_len(self):
        assignment = Assignment()
        task, worker = self.make_pair(1, 1)
        assignment.add(task, worker)
        assert len(assignment) == 1
        assert assignment.assigned_task_ids == {1}
        assert assignment.assigned_worker_ids == {1}

    def test_rejects_duplicate_worker(self):
        assignment = Assignment()
        t1, w = self.make_pair(1, 5)
        t2, _ = self.make_pair(2, 5)
        assignment.add(t1, w)
        with pytest.raises(ValueError, match="worker 5"):
            assignment.add(t2, w)

    def test_rejects_duplicate_task(self):
        assignment = Assignment()
        t, w1 = self.make_pair(3, 1)
        _, w2 = self.make_pair(3, 2)
        assignment.add(t, w1)
        with pytest.raises(ValueError, match="task 3"):
            assignment.add(t, w2)

    def test_travel_costs(self):
        assignment = Assignment()
        task, worker = self.make_pair(1, 1)
        assignment.add(task, worker)  # worker at (3,4), task at origin: 5 km
        assert assignment.total_travel_km() == pytest.approx(5.0)
        assert assignment.average_travel_km() == pytest.approx(5.0)

    def test_empty_average_travel_is_zero(self):
        assert Assignment().average_travel_km() == 0.0
