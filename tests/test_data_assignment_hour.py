"""Tests for the assignment-instant knob of InstanceBuilder.build_day."""

import pytest

from repro.assignment import compute_feasible
from repro.experiments import ExperimentRunner, ExperimentSettings
from repro.framework import PipelineConfig


class TestAssignmentHour:
    def test_default_is_day_start(self, tiny_builder):
        instance = tiny_builder.build_day(day=6)
        assert instance.current_time == pytest.approx(24.0 * 6)

    def test_offset_shifts_current_time(self, tiny_builder):
        instance = tiny_builder.build_day(day=6, assignment_hour=24.0)
        assert instance.current_time == pytest.approx(24.0 * 6 + 24.0)

    def test_same_tasks_and_workers_either_way(self, tiny_builder):
        """The instant changes feasibility, not the populations."""
        start = tiny_builder.build_day(day=6)
        end = tiny_builder.build_day(day=6, assignment_hour=24.0)
        assert [t.task_id for t in start.tasks] == [t.task_id for t in end.tasks]
        assert [w.worker_id for w in start.workers] == [
            w.worker_id for w in end.workers
        ]

    def test_day_end_feasibility_grows_with_phi(self, tiny_dataset):
        """At the day end a task is assignable only if published within the
        last ϕ hours, so the feasible-pair count must be monotone in ϕ."""
        from repro.data import InstanceBuilder

        counts = []
        for phi in (1.0, 3.0, 6.0, 12.0):
            builder = InstanceBuilder(tiny_dataset, valid_hours=phi)
            instance = builder.build_day(day=6, assignment_hour=24.0)
            feasible = compute_feasible(
                instance.workers, instance.tasks, instance.current_time
            )
            counts.append(feasible.num_feasible)
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_day_start_feasibility_flat_in_phi(self, tiny_dataset):
        """At the day start the deadline has >= ϕ hours of slack plus the
        publication delay, so ϕ barely moves the feasible count."""
        from repro.data import InstanceBuilder

        counts = []
        for phi in (1.0, 6.0):
            builder = InstanceBuilder(tiny_dataset, valid_hours=phi)
            instance = builder.build_day(day=6)
            feasible = compute_feasible(
                instance.workers, instance.tasks, instance.current_time
            )
            counts.append(feasible.num_feasible)
        assert counts[1] >= counts[0]

    def test_runner_threads_assignment_hour(self, tiny_dataset):
        settings = ExperimentSettings(
            scale=0.02, num_days=1, seed=3, assignment_hour=24.0
        )
        runner = ExperimentRunner(
            tiny_dataset,
            settings,
            PipelineConfig(num_topics=5, propagation_mode="fixed",
                           num_rrr_sets=300, seed=3),
        )
        day = runner.days[0]
        instance = runner.build_instance(day)
        assert instance.current_time == pytest.approx(24.0 * day + 24.0)
