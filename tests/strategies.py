"""Shared hypothesis strategies for the streaming test suite.

One place for the generators every stream/shard/scenario property test
draws from, so "a random world" means the same thing across files:

* :func:`world_configs` — keyword dictionaries for
  :func:`repro.stream.synthetic_stream`, spanning single-blob and
  multi-city worlds, churn/cancel noise and multi-day relocation waves;
* :func:`stream_worlds` — the materialized ``(base_instance, log)`` pair;
* :func:`event_logs` — small hand-assembled logs exercising every event
  kind (relocations always follow an arrival of the same worker, as the
  log requires);
* :func:`trigger_factories` — zero-argument factories for fresh trigger
  instances (triggers are stateful, so shared instances would leak state
  between runs being compared).

The CI hypothesis profile (derandomized, ``deadline=None``) is registered
and loaded in ``tests/conftest.py`` so property tests are reproducible and
never fail on shared-runner timing.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.entities import Task, Worker
from repro.geo import Point
from repro.stream import (
    CountTrigger,
    EventLog,
    HybridTrigger,
    TaskCancelEvent,
    TaskExpiryEvent,
    TaskPublishEvent,
    TimeWindowTrigger,
    WorkerArrivalEvent,
    WorkerChurnEvent,
    WorkerRelocateEvent,
    synthetic_stream,
)


@st.composite
def world_configs(draw, max_workers: int = 70, max_tasks: int = 70,
                  multi_day: bool = False) -> dict:
    """Keyword arguments for :func:`synthetic_stream`."""
    clusters = draw(st.sampled_from([1, 2, 3, 4]))
    config = {
        "num_workers": draw(st.integers(10, max_workers)),
        "num_tasks": draw(st.integers(10, max_tasks)),
        "duration_hours": draw(st.sampled_from([6.0, 12.0, 24.0])),
        "area_km": draw(st.sampled_from([10.0, 20.0])),
        "valid_hours": draw(st.sampled_from([2.0, 4.0])),
        "reachable_km": draw(st.sampled_from([4.0, 8.0])),
        "churn_fraction": draw(st.sampled_from([0.0, 0.1, 0.3])),
        "cancel_fraction": draw(st.sampled_from([0.0, 0.1])),
        "clusters": clusters,
        "seed": draw(st.integers(0, 2**16)),
    }
    if multi_day:
        config["days"] = draw(st.integers(2, 4))
        config["duration_hours"] = draw(st.sampled_from([6.0, 8.0]))
        config["relocate_fraction"] = draw(st.sampled_from([0.2, 0.5, 0.8]))
        config["overnight_churn_fraction"] = draw(st.sampled_from([0.0, 0.2]))
        config["relocate_span"] = draw(
            st.sampled_from(["cluster", "world"] if clusters > 1 else ["cluster"])
        )
    return config


@st.composite
def stream_worlds(draw, max_workers: int = 70, max_tasks: int = 70,
                  multi_day: bool = False):
    """A materialized ``(base_instance, EventLog)`` synthetic world."""
    return synthetic_stream(**draw(world_configs(
        max_workers=max_workers, max_tasks=max_tasks, multi_day=multi_day
    )))


@st.composite
def event_logs(draw, max_events: int = 40) -> EventLog:
    """Small hand-assembled logs covering every event kind.

    Times are drawn from a coarse grid so simultaneous events (and the
    phase tie-break they exercise) actually occur; relocation events are
    only emitted for workers with an earlier arrival, as the log requires.
    """
    times = st.integers(0, 24).map(lambda h: h / 2.0)
    coords = st.integers(-20, 20).map(float)
    num_workers = draw(st.integers(1, 6))
    num_tasks = draw(st.integers(1, 6))

    events = []
    arrival_time: dict[int, float] = {}
    for worker_id in range(num_workers):
        t = draw(times)
        arrival_time[worker_id] = t
        events.append(WorkerArrivalEvent(
            time=t,
            worker=Worker(
                worker_id=worker_id,
                location=Point(draw(coords), draw(coords)),
                reachable_km=draw(st.sampled_from([5.0, 10.0])),
            ),
        ))
    for task_id in range(num_tasks):
        published = draw(times)
        task = Task(
            task_id=task_id,
            location=Point(draw(coords), draw(coords)),
            publication_time=published,
            valid_hours=draw(st.sampled_from([1.0, 3.0, 6.0])),
        )
        events.append(TaskPublishEvent(time=published, task=task))
        events.append(TaskExpiryEvent(time=task.expiry_time, task_id=task_id))

    extras = draw(st.integers(0, max(0, max_events - len(events))))
    for _ in range(extras):
        kind = draw(st.sampled_from(["churn", "cancel", "relocate"]))
        if kind == "churn":
            events.append(WorkerChurnEvent(
                time=draw(times), worker_id=draw(st.integers(0, num_workers - 1))
            ))
        elif kind == "cancel":
            events.append(TaskCancelEvent(
                time=draw(times), task_id=draw(st.integers(0, num_tasks - 1))
            ))
        else:
            worker_id = draw(st.integers(0, num_workers - 1))
            offset = draw(st.sampled_from([0.5, 1.0, 2.0]))
            events.append(WorkerRelocateEvent(
                time=arrival_time[worker_id] + offset,
                worker_id=worker_id,
                location=Point(draw(coords), draw(coords)),
            ))
    return EventLog(draw(st.permutations(events)))


@st.composite
def trigger_factories(draw):
    """A zero-argument factory building a fresh, equivalent trigger."""
    kind = draw(st.sampled_from(["window", "count", "hybrid"]))
    if kind == "window":
        window = draw(st.sampled_from([0.5, 1.0, 2.0]))
        return lambda: TimeWindowTrigger(window)
    if kind == "count":
        count = draw(st.integers(5, 40))
        return lambda: CountTrigger(count)
    count = draw(st.integers(10, 50))
    window = draw(st.sampled_from([1.0, 2.0]))
    return lambda: HybridTrigger(count, window)
