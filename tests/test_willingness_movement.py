"""Tests for repro.willingness.movement — plug-in movement families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotFittedError
from repro.geo import Point
from repro.willingness import (
    MOVEMENT_FAMILIES,
    ExponentialMovement,
    GeneralizedHistoricalAcceptance,
    HistoricalAcceptance,
    LognormalMovement,
    ParetoMovement,
    RayleighMovement,
    fit_pareto_shape,
    make_movement_model,
)

ALL_FAMILIES = sorted(MOVEMENT_FAMILIES)

jumps_strategy = st.lists(
    st.floats(0, 50, width=32).map(float), min_size=1, max_size=20
)


class TestFamilyRegistry:
    def test_four_families_registered(self):
        assert ALL_FAMILIES == ["exponential", "lognormal", "pareto", "rayleigh"]

    def test_make_movement_model(self):
        assert isinstance(make_movement_model("pareto"), ParetoMovement)
        assert isinstance(make_movement_model("rayleigh"), RayleighMovement)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            make_movement_model("levy")


class TestFamilyContracts:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_unfitted_tail_raises(self, family):
        with pytest.raises(NotFittedError):
            make_movement_model(family).tail(1.0)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_empty_jumps_rejected(self, family):
        with pytest.raises(ValueError):
            make_movement_model(family).fit([])

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_negative_jump_rejected(self, family):
        with pytest.raises(ValueError):
            make_movement_model(family).fit([1.0, -0.5])

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    @settings(max_examples=25)
    @given(jumps=jumps_strategy)
    def test_tail_is_probability_and_decreasing(self, family, jumps):
        model = make_movement_model(family).fit(jumps)
        distances = np.array([0.0, 0.5, 1.0, 5.0, 25.0, 100.0])
        tails = np.asarray(model.tail(distances), dtype=float)
        assert np.all(tails >= 0.0) and np.all(tails <= 1.0 + 1e-12)
        assert np.all(np.diff(tails) <= 1e-12), tails

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_degenerate_all_zero_jumps(self, family):
        """A worker who never moved gets a near-zero far-field tail."""
        model = make_movement_model(family).fit([0.0, 0.0, 0.0])
        assert float(model.tail(25.0)) < 1e-6


class TestSpecificFits:
    def test_pareto_matches_eq1(self):
        jumps = [1.0, 3.0, 7.0]
        model = ParetoMovement().fit(jumps)
        assert model.shape == pytest.approx(fit_pareto_shape(jumps))

    def test_exponential_rate_is_reciprocal_mean(self):
        model = ExponentialMovement().fit([2.0, 4.0])
        assert model.rate == pytest.approx(1.0 / 3.0)
        assert float(model.tail(0.0)) == pytest.approx(1.0)

    def test_lognormal_mu_sigma(self):
        jumps = [0.0, np.e - 1.0]  # logs: 0 and 1
        model = LognormalMovement().fit(jumps)
        assert model.mu == pytest.approx(0.5)
        assert model.sigma == pytest.approx(0.5)
        # At the median (ln(d+1) = mu) the tail is exactly 1/2.
        median_distance = float(np.exp(0.5) - 1.0)
        assert float(model.tail(median_distance)) == pytest.approx(0.5)

    def test_rayleigh_sigma_sq(self):
        model = RayleighMovement().fit([2.0, 4.0])
        assert model.sigma_sq == pytest.approx((4.0 + 16.0) / 2.0 / 2.0)
        assert float(model.tail(0.0)) == pytest.approx(1.0)


class TestGeneralizedHA:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedHistoricalAcceptance(family="levy")

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GeneralizedHistoricalAcceptance().willingness(0, Point(0, 0))

    def test_pareto_family_matches_reference_ha(self, history_factory):
        histories = {
            1: history_factory(1, [(0.0, 0.0, 0.0), (3.0, 4.0, 1.0), (6.0, 8.0, 2.0)]),
            2: history_factory(2, [(1.0, 1.0, 0.0), (1.0, 2.0, 1.0)]),
            3: history_factory(3, [(9.0, 9.0, 0.0)]),  # too short -> no model
        }
        reference = HistoricalAcceptance().fit(histories)
        generalized = GeneralizedHistoricalAcceptance(family="pareto").fit(histories)
        for target in (Point(0, 0), Point(5, 5), Point(-3, 7)):
            for worker_id in (1, 2, 3):
                assert generalized.willingness(worker_id, target) == pytest.approx(
                    reference.willingness(worker_id, target)
                ), (worker_id, target)

    def test_willingness_all_alignment(self, history_factory):
        histories = {
            5: history_factory(5, [(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]),
            9: history_factory(9, [(10.0, 10.0, 0.0), (11.0, 10.0, 1.0)]),
        }
        model = GeneralizedHistoricalAcceptance().fit(histories)
        target = Point(0.0, 0.0)
        vector = model.willingness_all(target)
        assert vector.shape == (2,)
        assert vector[0] == pytest.approx(model.willingness(5, target))
        assert vector[1] == pytest.approx(model.willingness(9, target))
        # The nearby worker is strictly more willing.
        assert vector[0] > vector[1]

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_every_family_runs_end_to_end(self, family, history_factory):
        histories = {
            1: history_factory(1, [(0.0, 0.0, 0.0), (2.0, 0.0, 1.0), (2.0, 2.0, 2.0)]),
        }
        model = GeneralizedHistoricalAcceptance(family=family).fit(histories)
        value = model.willingness(1, Point(1.0, 1.0))
        assert 0.0 <= value <= 1.0
