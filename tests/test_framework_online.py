"""Tests for repro.framework.online — batched-arrival simulation."""

import pytest

from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.exceptions import DataError
from repro.framework import OnlineSimulator, WorkerArrival, day_arrivals
from repro.framework.online import OnlineResult
from repro.assignment import MTAAssigner, NearestNeighborAssigner
from repro.geo import Point


def make_instance(tasks, current_time=0.0):
    return SCInstance(
        name="online-test",
        current_time=current_time,
        tasks=tasks,
        workers=[],
        histories={},
        social_edges=[],
        all_worker_ids=tuple(range(100)),
    )


def make_task(task_id, x, y, published, phi=5.0):
    return Task(
        task_id=task_id,
        location=Point(x, y),
        publication_time=published,
        valid_hours=phi,
    )


def make_arrival(worker_id, x, y, at, radius=10.0, speed=5.0):
    return WorkerArrival(
        worker=Worker(
            worker_id=worker_id,
            location=Point(x, y),
            reachable_km=radius,
            speed_kmh=speed,
        ),
        arrival_time=at,
    )


class TestOnlineSimulatorValidation:
    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            OnlineSimulator(MTAAssigner(), None, batch_hours=0.0)

    def test_rejects_negative_patience(self):
        with pytest.raises(ValueError):
            OnlineSimulator(MTAAssigner(), None, patience_hours=-1.0)


class TestOnlineRun:
    def test_empty_streams(self):
        simulator = OnlineSimulator(MTAAssigner(), None)
        result = simulator.run(make_instance([]), [])
        assert result.total_assigned == 0
        assert len(result.steps) == 1  # one empty round at the start time

    def test_single_worker_single_task(self):
        instance = make_instance([make_task(0, 1.0, 0.0, published=0.0)])
        arrivals = [make_arrival(7, 0.0, 0.0, at=0.0)]
        simulator = OnlineSimulator(MTAAssigner(), None)
        result = simulator.run(instance, arrivals)
        assert result.total_assigned == 1
        pair = result.assignment.pairs[0]
        assert pair.worker.worker_id == 7
        assert pair.task.task_id == 0

    def test_worker_stays_online_until_assigned(self):
        # Worker arrives at t=0; the only feasible task publishes at t=3.
        instance = make_instance([make_task(0, 1.0, 0.0, published=3.0)])
        arrivals = [make_arrival(1, 0.0, 0.0, at=0.0)]
        simulator = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0)
        result = simulator.run(instance, arrivals)
        assert result.total_assigned == 1
        assigned_step = next(s for s in result.steps if s.assigned)
        assert assigned_step.time == pytest.approx(3.0)

    def test_task_expires_unassigned(self):
        # Task lives [0, 1]; the only worker arrives at t=2.
        instance = make_instance([make_task(0, 1.0, 0.0, published=0.0, phi=1.0)])
        arrivals = [make_arrival(1, 0.0, 0.0, at=2.0)]
        simulator = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0)
        result = simulator.run(instance, arrivals, end_time=3.0)
        assert result.total_assigned == 0
        assert result.total_expired == 1

    def test_patience_churns_idle_worker(self):
        # No feasible tasks at all; worker leaves after 2 h of patience.
        instance = make_instance([make_task(0, 500.0, 500.0, published=0.0, phi=8.0)])
        arrivals = [make_arrival(1, 0.0, 0.0, at=0.0)]
        simulator = OnlineSimulator(
            MTAAssigner(), None, batch_hours=1.0, patience_hours=2.0
        )
        result = simulator.run(instance, arrivals, end_time=6.0)
        assert result.total_assigned == 0
        assert result.total_churned == 1

    def test_no_patience_means_no_churn(self):
        instance = make_instance([make_task(0, 500.0, 500.0, published=0.0, phi=8.0)])
        arrivals = [make_arrival(1, 0.0, 0.0, at=0.0)]
        simulator = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0)
        result = simulator.run(instance, arrivals, end_time=6.0)
        assert result.total_churned == 0
        assert all(s.churned_workers == 0 for s in result.steps)

    def test_each_worker_assigned_at_most_once(self):
        tasks = [make_task(i, float(i), 0.0, published=0.0) for i in range(4)]
        arrivals = [make_arrival(1, 0.0, 0.0, at=0.0, radius=50.0)]
        simulator = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0)
        result = simulator.run(make_instance(tasks), arrivals)
        assert result.total_assigned == 1

    def test_later_batches_pick_up_late_tasks(self):
        tasks = [
            make_task(0, 1.0, 0.0, published=0.0),
            make_task(1, 0.0, 1.0, published=2.0),
        ]
        arrivals = [
            make_arrival(1, 0.0, 0.0, at=0.0),
            make_arrival(2, 0.0, 0.0, at=0.0),
        ]
        simulator = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0)
        result = simulator.run(make_instance(tasks), arrivals)
        assert result.total_assigned == 2
        times = sorted(step.time for step in result.steps if step.assigned)
        assert times[0] < times[1]

    def test_works_with_greedy_assigner(self):
        tasks = [make_task(i, float(i), 0.0, published=0.0) for i in range(3)]
        arrivals = [make_arrival(i, float(i), 0.5, at=0.0) for i in range(3)]
        simulator = OnlineSimulator(NearestNeighborAssigner(), None)
        result = simulator.run(make_instance(tasks), arrivals)
        assert result.total_assigned == 3

    def test_cpu_time_accumulates(self):
        tasks = [make_task(i, float(i), 0.0, published=0.0) for i in range(3)]
        arrivals = [make_arrival(i, float(i), 0.5, at=0.0) for i in range(3)]
        result = OnlineSimulator(MTAAssigner(), None).run(make_instance(tasks), arrivals)
        assert result.total_cpu_seconds > 0.0


class TestDayArrivals:
    def test_arrivals_sorted_and_unique(self, tiny_dataset):
        day = 6
        arrivals = day_arrivals(tiny_dataset, day)
        times = [a.arrival_time for a in arrivals]
        assert times == sorted(times)
        ids = [a.worker.worker_id for a in arrivals]
        assert len(set(ids)) == len(ids)

    def test_matches_day_instance_workers(self, tiny_dataset, tiny_builder):
        day = 6
        instance = tiny_builder.build_day(day)
        arrivals = day_arrivals(tiny_dataset, day, reachable_km=25.0)
        assert {a.worker.worker_id for a in arrivals} == {
            w.worker_id for w in instance.workers
        }

    def test_empty_day_raises(self, tiny_dataset):
        with pytest.raises(DataError):
            day_arrivals(tiny_dataset, 9999)

    def test_online_end_to_end_on_tiny_world(
        self, tiny_dataset, tiny_instance, full_influence
    ):
        arrivals = day_arrivals(tiny_dataset, 6)
        simulator = OnlineSimulator(
            MTAAssigner(), full_influence, batch_hours=4.0
        )
        result = simulator.run(tiny_instance, arrivals)
        assert isinstance(result, OnlineResult)
        assert result.total_assigned > 0
        # Pool accounting: every assigned task was open in some round.
        assert result.total_assigned <= len(tiny_instance.tasks)
