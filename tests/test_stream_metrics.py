"""Tests for repro.stream.metrics — collectors, percentiles, summaries."""

import pytest

from repro.stream import RoundRecord, StreamMetrics


def make_record(index=0, time=0.0, assigned=0, expired=0, churned=0,
                cancelled=0, drained=0, seconds=0.0, workers=0, tasks=0):
    return RoundRecord(
        index=index, time=time, online_workers=workers, open_tasks=tasks,
        drained_events=drained, assigned=assigned, expired_tasks=expired,
        churned_workers=churned, cancelled_tasks=cancelled,
        round_seconds=seconds,
    )


class TestCounters:
    def test_on_round_accumulates(self):
        metrics = StreamMetrics()
        metrics.on_round(make_record(index=0, time=0.0, assigned=2, expired=1,
                                     drained=5, seconds=0.1))
        metrics.on_round(make_record(index=1, time=2.0, churned=3, cancelled=1,
                                     drained=2, seconds=0.3))
        assert metrics.total_assigned == 2
        assert metrics.total_expired == 1
        assert metrics.total_churned == 3
        assert metrics.total_cancelled == 1
        assert metrics.total_drained == 7
        assert metrics.sim_hours == pytest.approx(2.0)

    def test_wait_recording(self):
        metrics = StreamMetrics()
        metrics.on_assigned(1.5, 0.5)
        metrics.on_assigned(2.5, 1.0)
        assert metrics.task_wait_histogram.count == 2
        assert metrics.task_wait_histogram.min_seen == 1.5
        assert metrics.task_wait_histogram.max_seen == 2.5
        assert metrics.worker_wait_histogram.count == 2
        assert metrics.worker_wait_histogram.mean == pytest.approx(0.75)
        # Nearest-rank p50 of {1.5, 2.5} is the 1.5 sample, reported within
        # the histogram's bucket-width relative-error bound.
        p50 = metrics.task_wait_percentiles((50.0,))[50.0]
        assert p50 == pytest.approx(
            1.5, rel=metrics.task_wait_histogram.relative_error
        )

    def test_percentiles_empty_safe(self):
        metrics = StreamMetrics()
        assert metrics.round_latency_percentiles()[99.0] == 0.0
        assert metrics.task_wait_percentiles()[50.0] == 0.0
        assert metrics.sim_hours == 0.0


class TestSummary:
    def test_rates_and_throughput(self):
        metrics = StreamMetrics()
        metrics.on_round(make_record(index=0, time=0.0, assigned=3, expired=1,
                                     drained=10, seconds=0.2))
        metrics.on_round(make_record(index=1, time=4.0, assigned=1, churned=2,
                                     cancelled=1, drained=6, seconds=0.4))
        metrics.on_assigned(1.0, 0.0)
        metrics.add_wall_seconds(2.0)
        summary = metrics.summary()
        assert summary.rounds == 2
        assert summary.assigned == 4
        assert summary.events_drained == 16
        assert summary.events_per_second == pytest.approx(8.0)
        assert summary.assigned_per_sim_hour == pytest.approx(1.0)
        # 4 assigned + 1 expired + 1 cancelled tasks seen; 4 + 2 workers seen.
        assert summary.expiry_rate == pytest.approx(1 / 6)
        assert summary.churn_rate == pytest.approx(2 / 6)
        # Nearest-rank p99 of {0.2, 0.4} is the 0.4 sample, within the
        # histogram's quantization bound.
        assert summary.round_latency_p99 == pytest.approx(
            0.4, rel=metrics.round_latency_histogram.relative_error
        )

    def test_zero_division_guards(self):
        summary = StreamMetrics().summary()
        assert summary.events_per_second == 0.0
        assert summary.assigned_per_sim_hour == 0.0
        assert summary.expiry_rate == 0.0
        assert summary.churn_rate == 0.0

    def test_as_text_smoke(self):
        metrics = StreamMetrics()
        metrics.on_round(make_record(assigned=1, drained=3, seconds=0.01))
        text = metrics.summary().as_text()
        assert "rounds:" in text and "task wait" in text


class TestStateDict:
    def test_roundtrip_bit_exact(self):
        metrics = StreamMetrics()
        metrics.on_round(make_record(index=0, time=0.25, assigned=2, expired=1,
                                     drained=7, seconds=0.125, workers=5, tasks=9))
        metrics.on_round(make_record(index=1, time=1.75, churned=1, cancelled=2,
                                     drained=3, seconds=0.5))
        metrics.on_assigned(0.75, 0.25)
        metrics.add_wall_seconds(1.5)

        restored = StreamMetrics()
        restored.load_state_dict(metrics.state_dict())
        assert restored.rounds == metrics.rounds
        assert restored.task_wait_histogram == metrics.task_wait_histogram
        assert restored.worker_wait_histogram == metrics.worker_wait_histogram
        # Round latency is rebuilt by replaying the rounds, not persisted.
        assert restored.round_latency_histogram == metrics.round_latency_histogram
        assert restored.wall_seconds == metrics.wall_seconds
        assert restored.total_assigned == metrics.total_assigned
        assert restored.total_drained == metrics.total_drained

    def test_roundtrip_empty(self):
        metrics = StreamMetrics()
        restored = StreamMetrics()
        restored.load_state_dict(metrics.state_dict())
        assert restored.rounds == []
        assert restored.wall_seconds == 0.0


class TestAdmissionAndRelocationMetrics:
    def test_new_counters_accumulate_and_roundtrip(self):
        metrics = StreamMetrics()
        metrics.on_round(RoundRecord(
            index=0, time=0.0, online_workers=5, open_tasks=6,
            drained_events=11, assigned=2, expired_tasks=0, churned_workers=0,
            cancelled_tasks=0, round_seconds=0.1, relocated_workers=3,
            deferred_tasks=4, shed_tasks=1,
        ))
        assert metrics.total_relocated == 3
        assert metrics.total_deferred == 4
        assert metrics.total_shed == 1
        state = metrics.state_dict()
        fresh = StreamMetrics()
        fresh.load_state_dict(state)
        assert fresh.total_relocated == 3
        assert fresh.total_deferred == 4
        assert fresh.total_shed == 1
        assert fresh.rounds[0].relocated_workers == 3

    def test_summary_shed_rate_counts_shed_as_seen(self):
        metrics = StreamMetrics()
        metrics.on_round(RoundRecord(
            index=0, time=0.0, online_workers=0, open_tasks=0,
            drained_events=0, assigned=3, expired_tasks=1, churned_workers=0,
            cancelled_tasks=0, round_seconds=0.0, shed_tasks=4,
        ))
        summary = metrics.summary()
        assert summary.shed == 4
        assert summary.shed_rate == pytest.approx(4 / 8)
        assert "shed 4" in summary.as_text()

    def test_default_record_fields_keep_legacy_shape(self):
        record = make_record(assigned=1)
        assert record.relocated_workers == 0
        assert record.deferred_tasks == 0
        assert record.shed_tasks == 0


class TestPhaseTimings:
    def _phased_record(self, index=0, **phases):
        return RoundRecord(
            index=index, time=float(index), online_workers=0, open_tasks=0,
            drained_events=0, assigned=0, expired_tasks=0, churned_workers=0,
            cancelled_tasks=0, round_seconds=0.5, **phases,
        )

    def test_default_phase_fields_are_zero(self):
        record = make_record()
        assert record.drain_seconds == 0.0
        assert record.prepare_seconds == 0.0
        assert record.solve_seconds == 0.0
        assert record.merge_seconds == 0.0
        assert record.repacks == 0

    def test_phase_totals_accumulate(self):
        metrics = StreamMetrics()
        metrics.on_round(self._phased_record(
            0, drain_seconds=0.1, prepare_seconds=0.2, solve_seconds=0.3,
            merge_seconds=0.05, repacks=1,
        ))
        metrics.on_round(self._phased_record(
            1, drain_seconds=0.1, prepare_seconds=0.3, solve_seconds=0.1,
        ))
        totals = metrics.phase_totals()
        assert totals["drain"] == pytest.approx(0.2)
        assert totals["prepare"] == pytest.approx(0.5)
        assert totals["solve"] == pytest.approx(0.4)
        assert totals["merge"] == pytest.approx(0.05)
        assert metrics.total_repacks == 1

    def test_phase_fields_roundtrip_state_dict(self):
        metrics = StreamMetrics()
        metrics.on_round(self._phased_record(
            0, drain_seconds=0.125, prepare_seconds=0.25, solve_seconds=0.0625,
            merge_seconds=0.03125, repacks=2,
        ))
        restored = StreamMetrics()
        restored.load_state_dict(metrics.state_dict())
        record = restored.rounds[0]
        assert record.drain_seconds == 0.125
        assert record.prepare_seconds == 0.25
        assert record.solve_seconds == 0.0625
        assert record.merge_seconds == 0.03125
        assert record.repacks == 2
        assert isinstance(record.repacks, int)
        assert restored.total_repacks == 2
        assert restored.phase_totals() == metrics.phase_totals()
