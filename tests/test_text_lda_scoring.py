"""Tests for LDA introspection and held-out scoring."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.text import GibbsLDA, VariationalLDA


TWO_TOPIC_DOCS = (
    [["cafe", "bar", "cafe", "diner"]] * 10
    + [["gym", "park", "gym", "trail"]] * 10
)


@pytest.fixture(scope="module", params=["variational", "gibbs"])
def fitted(request):
    if request.param == "gibbs":
        model = GibbsLDA(num_topics=2, iterations=120, seed=3)
    else:
        model = VariationalLDA(num_topics=2, seed=3)
    return model.fit(TWO_TOPIC_DOCS)


class TestTopWords:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            VariationalLDA(num_topics=2).top_words(0)

    def test_topic_out_of_range(self, fitted):
        with pytest.raises(ValueError):
            fitted.top_words(5)

    def test_descending_probabilities(self, fitted):
        words = fitted.top_words(0, count=4)
        probs = [p for _, p in words]
        assert probs == sorted(probs, reverse=True)

    def test_topics_separate_the_two_themes(self, fitted):
        """Each ground-truth theme should dominate one learned topic."""
        top0 = {w for w, _ in fitted.top_words(0, count=2)}
        top1 = {w for w, _ in fitted.top_words(1, count=2)}
        food = {"cafe", "bar", "diner"}
        sport = {"gym", "park", "trail"}
        food_topics = sum(bool(top & food) for top in (top0, top1))
        sport_topics = sum(bool(top & sport) for top in (top0, top1))
        assert food_topics >= 1 and sport_topics >= 1
        assert top0 != top1

    def test_count_caps_at_vocabulary(self, fitted):
        words = fitted.top_words(0, count=100)
        assert len(words) == 6  # vocabulary size


class TestHeldOutPerplexity:
    def test_rejects_oov_only(self, fitted):
        with pytest.raises(ValueError):
            fitted.held_out_perplexity([["opera", "museum"]])

    def test_in_distribution_beats_shuffled(self, fitted):
        """Documents drawn from the training themes must score better
        (lower perplexity) than theme-mixing documents."""
        coherent = [["cafe", "bar", "cafe"], ["gym", "park", "gym"]]
        mixed = [["cafe", "gym", "bar", "park", "diner", "trail"]]
        assert fitted.held_out_perplexity(coherent) < fitted.held_out_perplexity(mixed)

    def test_bounded_by_vocabulary(self, fitted):
        """Perplexity can never exceed an all-OOV-free uniform model by
        orders of magnitude — sanity band: (1, V^2]."""
        value = fitted.held_out_perplexity([["cafe", "gym", "bar"]])
        assert 1.0 < value <= 36.0  # V = 6

    def test_oov_tokens_skipped(self, fitted):
        with_oov = fitted.held_out_perplexity([["cafe", "bar", "spaceport"]])
        without = fitted.held_out_perplexity([["cafe", "bar"]])
        assert with_oov == pytest.approx(without, rel=0.2)

    def test_perplexity_proxy_improves_with_training(self):
        short = VariationalLDA(num_topics=2, max_iter=1, seed=7).fit(TWO_TOPIC_DOCS)
        long = VariationalLDA(num_topics=2, max_iter=60, seed=7).fit(TWO_TOPIC_DOCS)
        assert long.perplexity_proxy() >= short.perplexity_proxy() - 0.05
