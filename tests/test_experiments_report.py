"""Tests for repro.experiments.report — markdown report generation."""

import pytest

from repro.experiments import SweepResult, render_report, write_report
from repro.experiments.report import _trend, metric_table, shape_summary, sweep_section
from repro.framework.metrics import MetricsResult


def make_sweep():
    result = SweepResult(parameter="num_tasks", values=(100.0, 200.0))

    def record(algorithm, assigned, ai, cpu):
        return MetricsResult(
            algorithm=algorithm,
            num_assigned=assigned,
            average_influence=ai,
            average_propagation=1.0,
            average_travel_km=8.0,
            cpu_seconds=cpu,
        )

    result.series["MTA"] = {
        100.0: record("MTA", 90, 0.2, 0.01),
        200.0: record("MTA", 150, 0.2, 0.03),
    }
    result.series["IA"] = {
        100.0: record("IA", 90, 0.7, 0.02),
        200.0: record("IA", 150, 0.8, 0.05),
    }
    return result


class TestTrend:
    def test_flat(self):
        assert _trend([1.0, 1.0, 1.0]) == "flat"
        assert _trend([1.0]) == "flat"

    def test_rising_and_falling(self):
        assert _trend([1.0, 2.0, 3.0]) == "rising"
        assert _trend([3.0, 2.0, 1.0]) == "falling"

    def test_mixed(self):
        assert _trend([1.0, 3.0, 2.0]) == "mixed"


class TestMetricTable:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            metric_table(make_sweep(), "f1_score")

    def test_markdown_structure(self):
        table = metric_table(make_sweep(), "average_influence")
        lines = table.splitlines()
        assert lines[0].startswith("| algorithm | 100 | 200 |")
        assert lines[1].startswith("|---")
        assert any("| IA |" in line and "0.7000" in line for line in lines)


class TestShapeSummary:
    def test_identifies_winner_and_trend(self):
        summary = shape_summary(make_sweep())
        assert "highest mean: IA" in summary
        assert "lowest: MTA" in summary
        assert "rising" in summary  # IA's AI rises 0.7 -> 0.8


class TestRenderReport:
    def test_section_contains_all_metrics(self):
        section = sweep_section(make_sweep(), "Fig. 9")
        for label in ("CPU time (s)", "# assigned", "AI", "AP", "Travel (km)"):
            assert f"### {label}" in section

    def test_full_report(self):
        report = render_report(
            {"Fig. 9 (BK)": make_sweep()},
            heading="Demo report",
            preamble="Shapes, not numbers.",
        )
        assert report.startswith("# Demo report")
        assert "Shapes, not numbers." in report
        assert "## Fig. 9 (BK)" in report
        assert report.endswith("\n")

    def test_write_report(self, tmp_path):
        path = write_report({"S": make_sweep()}, tmp_path / "sub" / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Sweep report")
