"""Tests for the experiment harness (settings, runner, sweeps, tables)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    ABLATION_NAMES,
    COMPARISON_ALGORITHMS,
    ExperimentRunner,
    ExperimentSettings,
    format_series,
    format_sweep_table,
    run_ablation_sweep,
    run_comparison_sweep,
)
from repro.framework import PipelineConfig


@pytest.fixture(scope="module")
def tiny_runner(tiny_dataset):
    settings = ExperimentSettings(scale=0.02, num_days=1, seed=1)
    config = PipelineConfig(num_topics=4, propagation_mode="fixed", num_rrr_sets=600, seed=1)
    return ExperimentRunner(tiny_dataset, settings, config)


class TestExperimentSettings:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(scale=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentSettings(num_days=0)

    def test_scale_one_matches_paper(self):
        settings = ExperimentSettings(scale=1.0)
        assert settings.task_sweep == (500, 1000, 1500, 2000, 2500)
        assert settings.worker_sweep == (400, 800, 1200, 1600, 2000)
        assert settings.default_tasks == 1500
        assert settings.default_workers == 1200

    def test_physical_grids_not_scaled(self):
        settings = ExperimentSettings(scale=0.1)
        assert settings.valid_hours_sweep == (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert settings.radius_sweep == (5.0, 10.0, 15.0, 20.0, 25.0)

    def test_scaled_grids_floor(self):
        settings = ExperimentSettings(scale=0.001)
        assert all(v >= 10 for v in settings.task_sweep)


class TestExperimentRunner:
    def test_fitted_models_cached(self, tiny_runner):
        day = tiny_runner.days[0]
        assert tiny_runner.fitted_models(day) is tiny_runner.fitted_models(day)

    def test_unknown_parameter_rejected(self, tiny_runner):
        with pytest.raises(ValueError):
            tiny_runner.run_sweep("gravity", [1.0], lambda fitted: {})

    def test_comparison_sweep_structure(self, tiny_runner):
        result = run_comparison_sweep(tiny_runner, "num_tasks", [10, 20])
        assert set(result.algorithms()) == set(COMPARISON_ALGORITHMS)
        assert result.values == (10.0, 20.0)
        for name in COMPARISON_ALGORITHMS:
            series = result.metric_series(name, "num_assigned")
            assert len(series) == 2
            assert all(v >= 0 for v in series)

    def test_ablation_sweep_structure(self, tiny_runner):
        result = run_ablation_sweep(tiny_runner, "reachable_km", [10.0, 25.0])
        assert set(result.algorithms()) == set(ABLATION_NAMES)
        for name in ABLATION_NAMES:
            ai = result.metric_series(name, "average_influence")
            assert len(ai) == 2 and all(v >= 0 for v in ai)

    def test_mcmf_variants_share_cardinality_in_sweep(self, tiny_runner):
        result = run_comparison_sweep(tiny_runner, "num_tasks", [15])
        mta = result.metric_series("MTA", "num_assigned")[0]
        for name in ("IA", "EIA", "DIA"):
            assert result.metric_series(name, "num_assigned")[0] == mta

    def test_valid_hours_sweep_override_applies(self, tiny_runner):
        instance_short = tiny_runner.build_instance(tiny_runner.days[0], valid_hours=1.0)
        instance_long = tiny_runner.build_instance(tiny_runner.days[0], valid_hours=6.0)
        assert all(t.valid_hours == 1.0 for t in instance_short.tasks)
        assert all(t.valid_hours == 6.0 for t in instance_long.tasks)


class TestTables:
    def test_format_series(self, tiny_runner):
        result = run_comparison_sweep(tiny_runner, "num_tasks", [10])
        text = format_series(result, "average_influence", title="AI")
        assert "AI" in text
        for name in COMPARISON_ALGORITHMS:
            assert name in text

    def test_format_series_unknown_metric(self, tiny_runner):
        result = run_comparison_sweep(tiny_runner, "num_tasks", [10])
        with pytest.raises(ValueError):
            format_series(result, "happiness")

    def test_format_sweep_table_contains_all_metrics(self, tiny_runner):
        result = run_comparison_sweep(tiny_runner, "num_tasks", [10])
        text = format_sweep_table(result, title="T")
        for label in ("CPU time", "# assigned", "AI", "AP", "Travel"):
            assert label in text
