"""Regression tests: incremental online rounds == full recomputation.

The :class:`~repro.assignment.RoundState` cache must be an invisible
optimization: every prepared matrix and every resulting assignment has to
match the from-scratch per-round path bit for bit.
"""

import numpy as np
import pytest

from repro.assignment import (
    IAAssigner,
    MTAAssigner,
    PreparedInstance,
    RoundState,
)
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.framework import OnlineSimulator, WorkerArrival, day_arrivals
from repro.geo import Point


def make_instance(tasks, workers=(), current_time=0.0):
    return SCInstance(
        name="incremental-test",
        current_time=current_time,
        tasks=list(tasks),
        workers=list(workers),
        histories={},
        social_edges=[],
        all_worker_ids=tuple(range(50)),
    )


def make_task(task_id, x, y, published=0.0, phi=5.0):
    return Task(
        task_id=task_id, location=Point(x, y), publication_time=published,
        valid_hours=phi,
    )


def make_worker(worker_id, x, y, radius=10.0, speed=5.0):
    return Worker(
        worker_id=worker_id, location=Point(x, y), reachable_km=radius,
        speed_kmh=speed,
    )


class TestRoundStatePreparation:
    def test_single_round_matches_fresh_preparation(self):
        tasks = [make_task(i, float(i), 0.0) for i in range(4)]
        workers = [make_worker(i, 0.5 * i, 1.0) for i in range(3)]
        instance = make_instance(tasks, workers)
        incremental = RoundState(influence=None).prepare(instance)
        fresh = PreparedInstance(instance, influence=None)
        np.testing.assert_array_equal(
            incremental.feasible.distance_km, fresh.feasible.distance_km
        )
        np.testing.assert_array_equal(incremental.feasible.mask, fresh.feasible.mask)
        np.testing.assert_array_equal(
            incremental.influence_matrix, fresh.influence_matrix
        )

    def test_growing_and_shrinking_pools_stay_exact(self):
        state = RoundState(influence=None)
        tasks = [make_task(i, float(i), 0.0, phi=50.0) for i in range(6)]
        workers = [make_worker(i, 0.3 * i, 0.5) for i in range(6)]
        # Round 1: a slice of each pool; round 2: some leave, new ones join;
        # round 3: later time shifts the deadline mask.
        rounds = [
            (tasks[:3], workers[:2], 0.0),
            (tasks[1:5], [workers[1], workers[3], workers[4]], 1.0),
            ([tasks[2], tasks[5]], workers[3:], 2.5),
        ]
        for round_tasks, round_workers, time in rounds:
            instance = make_instance(round_tasks, round_workers, current_time=time)
            incremental = state.prepare(instance)
            fresh = PreparedInstance(instance, influence=None)
            np.testing.assert_array_equal(
                incremental.feasible.distance_km, fresh.feasible.distance_km
            )
            np.testing.assert_array_equal(
                incremental.feasible.mask, fresh.feasible.mask
            )
            assert incremental.entropy_by_task == fresh.entropy_by_task

    def test_empty_round_passthrough(self):
        state = RoundState(influence=None)
        prepared = state.prepare(make_instance([], []))
        assert prepared.feasible.num_feasible == 0

    def test_identity_change_invalidates_whole_row(self):
        """A worker re-seen with a new location must not leak stale cells for
        tasks absent from the round that detected the change."""
        state = RoundState(influence=None)
        task_a = make_task(0, 2.0, 0.0, phi=50.0)
        task_b = make_task(1, 3.0, 0.0, phi=50.0)
        worker = make_worker(7, 0.0, 0.0)
        state.prepare(make_instance([task_a, task_b], [worker]))
        moved = make_worker(7, 0.0, 1.0)
        # Round 2 sees the moved worker with only task A ...
        state.prepare(make_instance([task_a], [moved]))
        # ... round 3 with task B must recompute B's cell, not reuse round 1.
        prepared = state.prepare(make_instance([task_b], [moved]))
        fresh = PreparedInstance(make_instance([task_b], [moved]))
        np.testing.assert_array_equal(
            prepared.feasible.distance_km, fresh.feasible.distance_km
        )

    def test_task_identity_change_refreshes_entropy(self):
        state = RoundState(influence=None)
        original = Task(
            task_id=3, location=Point(1.0, 0.0), publication_time=0.0,
            valid_hours=9.0, venue_id=10,
        )
        replaced = Task(
            task_id=3, location=Point(1.0, 0.0), publication_time=0.0,
            valid_hours=9.0, venue_id=99,
        )
        worker = make_worker(1, 0.0, 0.0)
        instance = make_instance([original], [worker])
        instance.venue_visits = {10: {1: 4, 2: 4}, 99: {1: 8}}
        first = state.prepare(instance)
        instance_2 = make_instance([replaced], [worker])
        instance_2.venue_visits = instance.venue_visits
        second = state.prepare(instance_2)
        fresh = PreparedInstance(instance_2)
        assert second.entropy_by_task == fresh.entropy_by_task
        assert first.entropy_by_task != second.entropy_by_task

    def test_influence_rows_cached_per_worker(self, tiny_instance, fitted_models):
        """Influence cells computed through RoundState rectangles equal the
        full-matrix path, even when workers/tasks arrive across rounds."""
        influence_incremental = fitted_models.influence_model()
        influence_full = fitted_models.influence_model()
        workers = tiny_instance.workers
        tasks = tiny_instance.tasks
        state = RoundState(influence_incremental)
        first = tiny_instance.with_workers(list(workers[:4])).with_tasks(list(tasks[:5]))
        second = tiny_instance.with_workers(list(workers[2:8])).with_tasks(list(tasks[3:9]))
        for round_instance in (first, second):
            incremental = state.prepare(round_instance)
            fresh = PreparedInstance(round_instance, influence_full)
            np.testing.assert_array_equal(
                incremental.influence_matrix, fresh.influence_matrix
            )
            np.testing.assert_array_equal(
                incremental.feasible.mask, fresh.feasible.mask
            )


class TestOnlineEquivalence:
    def _assignments(self, result):
        return sorted(
            (pair.worker.worker_id, pair.task.task_id)
            for pair in result.assignment.pairs
        )

    def test_synthetic_day_identical_assignments(self):
        tasks = [
            make_task(i, float(i % 4), 0.3 * i, published=float(i % 3), phi=6.0)
            for i in range(8)
        ]
        arrivals = [
            WorkerArrival(worker=make_worker(i, 0.4 * i, 1.0), arrival_time=0.5 * i)
            for i in range(7)
        ]
        incremental = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0).run(
            make_instance(tasks), arrivals
        )
        full = OnlineSimulator(
            MTAAssigner(), None, batch_hours=1.0, incremental=False
        ).run(make_instance(tasks), arrivals)
        assert self._assignments(incremental) == self._assignments(full)
        assert [s.assigned for s in incremental.steps] == [
            s.assigned for s in full.steps
        ]

    def test_fitted_world_identical_assignments(
        self, tiny_dataset, tiny_instance, fitted_models
    ):
        arrivals = day_arrivals(tiny_dataset, 6)
        incremental = OnlineSimulator(
            IAAssigner(), fitted_models.influence_model(), batch_hours=4.0
        ).run(tiny_instance, arrivals)
        full = OnlineSimulator(
            IAAssigner(), fitted_models.influence_model(), batch_hours=4.0,
            incremental=False,
        ).run(tiny_instance, arrivals)
        assert incremental.total_assigned > 0
        assert self._assignments(incremental) == self._assignments(full)
        assert [s.expired_tasks for s in incremental.steps] == [
            s.expired_tasks for s in full.steps
        ]
