"""Warm-started lexicographic matching: bit-identity with cold solves.

The warm-start contract is that carried state is *purely an accelerator*:
for any ``WarmStart`` — the previous round's genuine carry, a stale one,
or adversarially corrupted duals — the solve returns the same objective
value and cardinality as a cold solve of the same matrix.  Costs in the
property tests are dyadic rationals (multiples of 1/8) with small
magnitudes, so every sum the solver forms is exact in float64 and the
bit-identity assertions are ``==``, not approx.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FlowError
from repro.flow import WarmStart, min_cost_matching


def solve_cold(cost, feasible):
    return min_cost_matching(cost, feasible)


def assert_same_optimum(result, reference):
    """Same lexicographic optimum: cardinality, then exact total cost."""
    assert result.rows.size == reference.rows.size
    assert result.total_cost == reference.total_cost


@st.composite
def dyadic_instances(draw):
    """A cost matrix of dyadic rationals plus a feasibility mask."""
    workers = draw(st.integers(1, 7))
    tasks = draw(st.integers(1, 7))
    cost = np.array(
        [
            [draw(st.integers(0, 64)) / 8.0 for _ in range(tasks)]
            for _ in range(workers)
        ]
    )
    mask = np.array(
        [[draw(st.booleans()) for _ in range(tasks)] for _ in range(workers)]
    )
    return cost, mask


@st.composite
def perturbed_warms(draw, worker_ids, task_ids):
    """An arbitrary (possibly hostile) carry for the given id sets."""
    hostile = st.one_of(
        st.integers(-8, 8).map(lambda n: n / 4.0),
        st.sampled_from([np.inf, -np.inf, np.nan, 1e300, -1e300]),
    )
    warm = WarmStart()
    for worker_id in worker_ids:
        if draw(st.booleans()):
            warm.worker_duals[worker_id] = draw(hostile)
    for task_id in task_ids:
        if draw(st.booleans()):
            warm.task_duals[task_id] = draw(hostile)
    for worker_id in worker_ids:
        if draw(st.booleans()):
            warm.matches[worker_id] = draw(
                st.sampled_from(list(task_ids) + ["ghost-task"])
            )
    return warm


class TestWarmBitIdentity:
    @given(dyadic_instances())
    @settings(max_examples=150)
    def test_empty_warm_matches_cold(self, instance):
        cost, mask = instance
        worker_ids = [f"w{i}" for i in range(cost.shape[0])]
        task_ids = [f"t{j}" for j in range(cost.shape[1])]
        cold = solve_cold(cost, mask)
        warmed = min_cost_matching(
            cost, mask, warm=WarmStart(),
            worker_ids=worker_ids, task_ids=task_ids,
        )
        assert_same_optimum(warmed, cold)

    @given(dyadic_instances(), dyadic_instances(), st.data())
    @settings(max_examples=150)
    def test_carried_warm_matches_cold_on_next_instance(
        self, first, second, data
    ):
        """A genuine carry from solve k seeds solve k+1 to the same optimum.

        The two instances share id space on their overlapping rows/columns
        (streaming rounds: some entities survive, some are new), which is
        exactly the shape the runtime produces.
        """
        cost_a, mask_a = first
        cost_b, mask_b = second
        ids_a = (
            [f"w{i}" for i in range(cost_a.shape[0])],
            [f"t{j}" for j in range(cost_a.shape[1])],
        )
        ids_b = (
            [f"w{i}" for i in range(cost_b.shape[0])],
            [f"t{j}" for j in range(cost_b.shape[1])],
        )
        carry = min_cost_matching(
            cost_a, mask_a, worker_ids=ids_a[0], task_ids=ids_a[1]
        ).warm
        cold = solve_cold(cost_b, mask_b)
        warmed = min_cost_matching(
            cost_b, mask_b, warm=carry,
            worker_ids=ids_b[0], task_ids=ids_b[1],
        )
        assert_same_optimum(warmed, cold)

    @given(dyadic_instances(), st.data())
    @settings(max_examples=150)
    def test_adversarial_warm_matches_cold(self, instance, data):
        """Hostile duals (inf/nan/huge) and garbage matches are harmless."""
        cost, mask = instance
        worker_ids = [f"w{i}" for i in range(cost.shape[0])]
        task_ids = [f"t{j}" for j in range(cost.shape[1])]
        warm = data.draw(perturbed_warms(worker_ids, task_ids))
        cold = solve_cold(cost, mask)
        warmed = min_cost_matching(
            cost, mask, warm=warm, worker_ids=worker_ids, task_ids=task_ids
        )
        assert_same_optimum(warmed, cold)

    def test_resolve_of_unchanged_instance_runs_zero_augmentations(self):
        rng = np.random.default_rng(0)
        cost = rng.integers(0, 40, size=(12, 15)) / 8.0
        mask = rng.random((12, 15)) < 0.7
        worker_ids = list(range(12))
        task_ids = list(range(100, 115))
        first = min_cost_matching(
            cost, mask, worker_ids=worker_ids, task_ids=task_ids
        )
        again = min_cost_matching(
            cost, mask, warm=first.warm,
            worker_ids=worker_ids, task_ids=task_ids,
        )
        assert again.augmentations == 0
        assert again.seeded == first.rows.size
        assert_same_optimum(again, first)

    def test_warm_survives_row_and_column_permutation(self):
        """Ids, not indices, key the carry: a shuffled instance still seeds."""
        rng = np.random.default_rng(1)
        cost = rng.integers(0, 40, size=(9, 11)) / 8.0
        mask = rng.random((9, 11)) < 0.8
        worker_ids = [f"w{i}" for i in range(9)]
        task_ids = [f"t{j}" for j in range(11)]
        carry = min_cost_matching(
            cost, mask, worker_ids=worker_ids, task_ids=task_ids
        ).warm
        rows = rng.permutation(9)
        cols = rng.permutation(11)
        shuffled = min_cost_matching(
            cost[np.ix_(rows, cols)],
            mask[np.ix_(rows, cols)],
            warm=carry,
            worker_ids=[worker_ids[i] for i in rows],
            task_ids=[task_ids[j] for j in cols],
        )
        assert shuffled.augmentations == 0
        reference = solve_cold(cost, mask)
        assert_same_optimum(shuffled, reference)


class TestWarmInterface:
    def test_warm_requires_ids(self):
        cost = np.ones((2, 2))
        mask = np.ones((2, 2), dtype=bool)
        with pytest.raises(FlowError, match="warm starts require"):
            min_cost_matching(cost, mask, warm=WarmStart())

    def test_ids_must_come_together(self):
        cost = np.ones((2, 2))
        mask = np.ones((2, 2), dtype=bool)
        with pytest.raises(FlowError, match="supplied together"):
            min_cost_matching(cost, mask, worker_ids=["a", "b"])

    def test_id_axis_mismatch(self):
        cost = np.ones((2, 3))
        mask = np.ones((2, 3), dtype=bool)
        with pytest.raises(FlowError, match="id/axis mismatch"):
            min_cost_matching(
                cost, mask, worker_ids=["a"], task_ids=["x", "y", "z"]
            )

    def test_tracked_empty_instance_returns_fresh_warm(self):
        cost = np.ones((2, 2))
        mask = np.zeros((2, 2), dtype=bool)
        result = min_cost_matching(
            cost, mask, worker_ids=["a", "b"], task_ids=["x", "y"]
        )
        assert result.rows.size == 0
        assert isinstance(result.warm, WarmStart)
        assert not result.warm.matches

    def test_untracked_solve_carries_no_warm(self):
        cost = np.zeros((2, 2))
        mask = np.ones((2, 2), dtype=bool)
        result = min_cost_matching(cost, mask)
        assert result.warm is None
        assert result.seeded == 0

    def test_pairs_property_compat(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        mask = np.ones((2, 2), dtype=bool)
        result = min_cost_matching(cost, mask)
        assert result.pairs == [(0, 0), (1, 1)]
        assert all(
            isinstance(row, int) and isinstance(col, int)
            for row, col in result.pairs
        )

    def test_carry_duals_price_matched_pairs_tight(self):
        rng = np.random.default_rng(2)
        cost = rng.integers(0, 40, size=(8, 8)) / 8.0
        mask = rng.random((8, 8)) < 0.75
        worker_ids = list("abcdefgh")
        task_ids = list(range(8))
        result = min_cost_matching(
            cost, mask, worker_ids=worker_ids, task_ids=task_ids
        )
        carry = result.warm
        for worker_id, task_id in carry.matches.items():
            row = worker_ids.index(worker_id)
            column = task_ids.index(task_id)
            reduced = (
                cost[row, column]
                - carry.worker_duals[worker_id]
                - carry.task_duals[task_id]
            )
            assert reduced == pytest.approx(0.0, abs=1e-9)
