"""Tests for the DITA framework: config, pipeline, metrics, simulator."""

import pytest

from repro.assignment import IAAssigner, MIAssigner, MTAAssigner
from repro.entities import Assignment
from repro.exceptions import ConfigurationError
from repro.framework import (
    DITAPipeline,
    PaperDefaults,
    PipelineConfig,
    Simulator,
    evaluate_assignment,
)
from repro.assignment.base import PreparedInstance


class TestPaperDefaults:
    def test_table_two_values(self):
        defaults = PaperDefaults()
        assert defaults.num_tasks == 1500
        assert defaults.num_workers == 1200
        assert defaults.valid_hours == 5.0
        assert defaults.reachable_km == 25.0
        assert defaults.speed_kmh == 5.0
        assert defaults.num_topics == 50
        assert defaults.epsilon == 0.1
        assert defaults.o == 1.0

    def test_sweep_grids(self):
        defaults = PaperDefaults()
        assert defaults.task_sweep == (500, 1000, 1500, 2000, 2500)
        assert defaults.worker_sweep == (400, 800, 1200, 1600, 2000)
        assert defaults.valid_hours_sweep == (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert defaults.radius_sweep == (5.0, 10.0, 15.0, 20.0, 25.0)


class TestPipelineConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(lda_engine="magic")
        with pytest.raises(ConfigurationError):
            PipelineConfig(propagation_mode="wormhole")
        with pytest.raises(ConfigurationError):
            PipelineConfig(num_topics=0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(num_rrr_sets=0)

    def test_fast_variant(self):
        fast = PipelineConfig(num_topics=50, num_rrr_sets=50_000).fast()
        assert fast.propagation_mode == "fixed"
        assert fast.num_rrr_sets <= 2000
        assert fast.num_topics <= 10


class TestDITAPipeline:
    def test_fit_produces_all_components(self, tiny_instance, fast_config):
        fitted = DITAPipeline(fast_config).fit(tiny_instance)
        assert fitted.graph.num_workers == len(tiny_instance.all_worker_ids)
        assert len(fitted.propagation) == fast_config.num_rrr_sets
        assert fitted.affinity is not None
        assert fitted.willingness is not None

    def test_gibbs_engine_selectable(self, tiny_instance):
        config = PipelineConfig(
            num_topics=3, lda_engine="gibbs", propagation_mode="fixed",
            num_rrr_sets=200, seed=1,
        )
        # GibbsLDA default iterations are heavy; patch a light engine through
        # the pipeline by running on the small instance (still exact code path).
        pipeline = DITAPipeline(config)
        lda = pipeline._make_lda()
        from repro.text import GibbsLDA

        assert isinstance(lda, GibbsLDA)

    def test_rpo_mode_runs(self, tiny_instance):
        config = PipelineConfig(
            num_topics=3, propagation_mode="rpo", epsilon=0.4,
            max_rrr_sets=3000, seed=1,
        )
        fitted = DITAPipeline(config).fit(tiny_instance)
        assert len(fitted.propagation) > 0

    def test_influence_models_share_components(self, fitted_models):
        full = fitted_models.influence_model()
        from repro.influence import InfluenceComponents

        ablated = fitted_models.influence_model(InfluenceComponents.without_affinity())
        assert full.affinity is ablated.affinity
        assert full.propagation is ablated.propagation


class TestMetrics:
    def test_empty_assignment_all_zero(self, prepared):
        result = evaluate_assignment("X", Assignment(), prepared)
        assert result.num_assigned == 0
        assert result.average_influence == 0.0
        assert result.average_propagation == 0.0
        assert result.average_travel_km == 0.0

    def test_metrics_row_keys(self, prepared):
        result = evaluate_assignment("X", Assignment(), prepared, cpu_seconds=0.5)
        row = result.as_row()
        assert set(row) == {"algorithm", "assigned", "AI", "AP", "travel_km", "cpu_s"}
        assert row["cpu_s"] == 0.5

    def test_average_influence_matches_manual(self, prepared, full_influence):
        assignment = IAAssigner().assign(prepared)
        result = evaluate_assignment("IA", assignment, prepared)
        manual = sum(
            full_influence.influence(p.worker, p.task) for p in assignment
        ) / len(assignment)
        assert result.average_influence == pytest.approx(manual, rel=1e-9)

    def test_average_propagation_matches_manual(self, prepared, full_influence):
        assignment = IAAssigner().assign(prepared)
        result = evaluate_assignment("IA", assignment, prepared)
        manual = sum(
            full_influence.propagation_to_others(p.worker.worker_id) for p in assignment
        ) / len(assignment)
        assert result.average_propagation == pytest.approx(manual, rel=1e-9)

    def test_travel_metric_matches_assignment(self, prepared):
        assignment = IAAssigner().assign(prepared)
        result = evaluate_assignment("IA", assignment, prepared)
        assert result.average_travel_km == pytest.approx(assignment.average_travel_km())

    def test_percentiles_share_the_obs_histogram(self):
        """Batch percentile math goes through obs.histo, same error bound."""
        from repro.framework import cpu_time_percentiles, latency_percentiles
        from repro.obs.histo import SECONDS_HISTOGRAM, LogHistogram

        samples = [0.01, 0.02, 0.04, 0.08, 0.5]
        oracle = LogHistogram(**SECONDS_HISTOGRAM)
        for value in samples:
            oracle.record(value)
        assert latency_percentiles(samples, (50.0, 99.0)) == (
            oracle.percentiles((50.0, 99.0))
        )

        from repro.framework import MetricsResult

        results = [
            MetricsResult("X", 1, 0.0, 0.0, 0.0, cpu_seconds=value)
            for value in samples
        ]
        assert cpu_time_percentiles(results, (50.0,)) == (
            oracle.percentiles((50.0,))
        )


class TestSimulator:
    def test_scoring_model_validated(self):
        with pytest.raises(ValueError):
            Simulator(scoring_model="imaginary")

    def test_run_instance_returns_per_algorithm(self, tiny_instance, fast_config, full_influence):
        simulator = Simulator(fast_config)
        results = simulator.run_instance(
            tiny_instance,
            [MTAAssigner(), IAAssigner(), MIAssigner()],
            influence_model=full_influence,
            full_model=full_influence,
        )
        assert [r.algorithm for r in results] == ["MTA", "IA", "MI"]
        assert all(r.cpu_seconds >= 0.0 for r in results)

    def test_run_instance_fits_when_models_missing(self, tiny_instance, fast_config):
        simulator = Simulator(fast_config)
        results = simulator.run_instance(tiny_instance, [MTAAssigner()])
        assert results[0].num_assigned > 0

    def test_run_days_averages(self, tiny_builder, fast_config):
        instances = [tiny_builder.build_day(d) for d in (5, 6)]
        simulator = Simulator(fast_config)
        averaged = simulator.run_days(instances, [MTAAssigner(), IAAssigner()])
        assert set(averaged) == {"MTA", "IA"}
        assert averaged["IA"].num_assigned > 0

    def test_algorithm_run_average_empty(self):
        from repro.framework.simulator import AlgorithmRun

        run = AlgorithmRun("X")
        averaged = run.average()
        assert averaged.num_assigned == 0 and averaged.average_influence == 0.0
