"""Property tests on RRRCollection query identities.

The influence model relies on several equivalent formulations of the same
estimator (per-pair, per-row, batched sparse product); these tests pin the
identities on randomized collections so vectorization bugs cannot hide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.propagation import RRRCollection


@st.composite
def collections(draw):
    """A random RRR collection with known membership."""
    num_workers = draw(st.integers(2, 12))
    num_sets = draw(st.integers(1, 25))
    roots = []
    members = []
    for _ in range(num_sets):
        root = draw(st.integers(0, num_workers - 1))
        extra = draw(
            st.lists(st.integers(0, num_workers - 1), min_size=0, max_size=6)
        )
        member = np.unique(np.array([root, *extra], dtype=np.int64))
        roots.append(root)
        members.append(member)
    collection = RRRCollection(num_workers=num_workers)
    collection.extend(np.array(roots, dtype=np.int64), members)
    return collection


class TestQueryIdentities:
    @settings(max_examples=40, deadline=None)
    @given(collection=collections())
    def test_ppro_matrix_row_matches_pairwise(self, collection):
        for source in range(collection.num_workers):
            row = collection.ppro_matrix_row(source)
            for target in range(collection.num_workers):
                assert row[target] == pytest.approx(
                    collection.ppro(source, target)
                ), (source, target)

    @settings(max_examples=40, deadline=None)
    @given(collection=collections())
    def test_weighted_root_cover_matches_explicit_sum(self, collection):
        rng = np.random.default_rng(0)
        weights = rng.random(collection.num_workers)
        out = collection.weighted_root_cover(weights)
        for source in range(collection.num_workers):
            explicit = sum(
                weights[target] * collection.ppro(source, target)
                for target in range(collection.num_workers)
            )
            assert out[source] == pytest.approx(explicit)

    @settings(max_examples=40, deadline=None)
    @given(collection=collections())
    def test_sigma_equals_unit_weighted_cover_plus_scaling(self, collection):
        """sigma(w) = |W|/N * count(w) and equals the coverage fraction
        identity used by Definition 6."""
        sigma = collection.sigma_all()
        fraction = collection.coverage_fraction()
        np.testing.assert_allclose(sigma, collection.num_workers * fraction)

    @settings(max_examples=30, deadline=None)
    @given(collection=collections())
    def test_membership_matrix_consistent_with_counts(self, collection):
        matrix = collection.membership_matrix()
        counts = np.asarray(matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(counts, collection.cover_counts())

    @settings(max_examples=30, deadline=None)
    @given(collection=collections())
    def test_greedy_informed_worker_maximizes_coverage(self, collection):
        best = collection.greedy_informed_worker()
        counts = collection.cover_counts()
        assert counts[best] == counts.max()

    @settings(max_examples=30, deadline=None)
    @given(collection=collections())
    def test_batch_cover_matches_per_column(self, collection):
        rng = np.random.default_rng(1)
        weights = rng.random((collection.num_workers, 3))
        batch = collection.weighted_root_cover_batch(weights)
        for column in range(3):
            single = collection.weighted_root_cover(weights[:, column])
            np.testing.assert_allclose(batch[:, column], single)

    def test_clear_resets_everything(self):
        collection = RRRCollection(num_workers=4)
        collection.extend(
            np.array([0, 1], dtype=np.int64),
            [np.array([0, 2], dtype=np.int64), np.array([1], dtype=np.int64)],
        )
        assert len(collection) == 2
        collection.clear()
        assert len(collection) == 0
        assert collection.sigma_all().sum() == 0.0
        assert collection.ppro(0, 1) == 0.0
