"""Tests for RRR set sampling and collection queries.

The decisive test is Lemma 2: the RRR estimate of P[target informed by
source] must agree with forward Monte-Carlo IC simulation.
"""

import numpy as np
import pytest

from repro.propagation import (
    RRRCollection,
    SocialGraph,
    estimate_informed_probabilities,
    sample_rrr_sets,
)


@pytest.fixture()
def star_graph():
    return SocialGraph(range(4), [(0, 1), (0, 2), (0, 3)])


def build_collection(graph, count, seed=0):
    collection = RRRCollection(num_workers=graph.num_workers)
    rng = np.random.default_rng(seed)
    roots, members = sample_rrr_sets(graph, count, rng)
    collection.extend(roots, members)
    return collection


class TestSampling:
    def test_count_and_root_membership(self, line_graph):
        rng = np.random.default_rng(1)
        roots, members = sample_rrr_sets(line_graph, 50, rng)
        assert len(roots) == len(members) == 50
        for root, member in zip(roots, members):
            assert root in member.tolist()  # root always reaches itself
            assert np.all(np.sort(member) == member)  # sorted for bisect

    def test_negative_count_rejected(self, line_graph):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            sample_rrr_sets(line_graph, -1, rng)

    def test_members_within_component(self):
        graph = SocialGraph(range(6), [(0, 1), (1, 2), (3, 4), (4, 5)])
        rng = np.random.default_rng(2)
        _, members = sample_rrr_sets(graph, 200, rng)
        comp_a = {graph.index_of(i) for i in (0, 1, 2)}
        comp_b = {graph.index_of(i) for i in (3, 4, 5)}
        for member in members:
            nodes = set(member.tolist())
            assert nodes <= comp_a or nodes <= comp_b


class TestCollectionQueries:
    def test_empty_collection(self, line_graph):
        collection = RRRCollection(num_workers=4)
        assert len(collection) == 0
        assert collection.sigma(0) == 0.0
        assert collection.ppro(0, 1) == 0.0
        np.testing.assert_array_equal(collection.coverage_fraction(), np.zeros(4))
        with pytest.raises(ValueError):
            collection.greedy_informed_worker()

    def test_cover_counts_consistency(self, line_graph):
        collection = build_collection(line_graph, 300)
        counts = collection.cover_counts()
        assert counts.sum() == sum(len(m) for m in collection.members)
        fraction = collection.coverage_fraction()
        np.testing.assert_allclose(fraction, counts / 300)

    def test_sigma_all_matches_scalar(self, line_graph):
        collection = build_collection(line_graph, 200)
        sigmas = collection.sigma_all()
        for i in range(4):
            assert sigmas[i] == pytest.approx(collection.sigma(i))

    def test_clear(self, line_graph):
        collection = build_collection(line_graph, 50)
        collection.clear()
        assert len(collection) == 0
        assert collection.cover_counts().sum() == 0

    def test_membership_matrix_shape_and_content(self, line_graph):
        collection = build_collection(line_graph, 60)
        matrix = collection.membership_matrix()
        assert matrix.shape == (4, 60)
        np.testing.assert_array_equal(
            np.asarray(matrix.sum(axis=1)).ravel(), collection.cover_counts()
        )

    def test_ppro_matrix_row_matches_scalar(self, line_graph):
        collection = build_collection(line_graph, 500)
        for source in range(4):
            row = collection.ppro_matrix_row(source)
            for target in range(4):
                assert row[target] == pytest.approx(collection.ppro(source, target))

    def test_weighted_root_cover_matches_manual(self, line_graph):
        collection = build_collection(line_graph, 300)
        weights = np.array([0.1, 0.4, 0.2, 0.3])
        out = collection.weighted_root_cover(weights)
        manual = np.zeros(4)
        for source in range(4):
            manual[source] = sum(
                weights[target] * collection.ppro(source, target) for target in range(4)
            )
        np.testing.assert_allclose(out, manual, rtol=1e-9)

    def test_weighted_root_cover_batch_matches_single(self, line_graph):
        collection = build_collection(line_graph, 200)
        rng = np.random.default_rng(5)
        weights = rng.random((4, 3))
        batch = collection.weighted_root_cover_batch(weights)
        assert batch.shape == (4, 3)
        for column in range(3):
            np.testing.assert_allclose(
                batch[:, column], collection.weighted_root_cover(weights[:, column])
            )

    def test_weighted_root_cover_batch_rejects_bad_shape(self, line_graph):
        collection = build_collection(line_graph, 10)
        with pytest.raises(ValueError):
            collection.weighted_root_cover_batch(np.ones((7, 2)))


class TestLemma2Agreement:
    """P_pro from RRR sets must match forward Monte-Carlo IC (Lemma 2)."""

    @pytest.mark.parametrize("edges", [
        [(0, 1), (1, 2), (2, 3)],                      # path
        [(0, 1), (0, 2), (0, 3)],                      # star
        [(0, 1), (1, 2), (2, 0), (2, 3)],              # triangle + tail
    ])
    def test_rrr_matches_monte_carlo(self, edges):
        graph = SocialGraph(range(4), edges)
        collection = build_collection(graph, 60_000, seed=7)
        for source in range(4):
            mc = estimate_informed_probabilities(graph, source, runs=20_000, seed=8)
            rrr = collection.ppro_matrix_row(source)
            for target in range(4):
                if target == source:
                    continue
                assert rrr[target] == pytest.approx(mc[target], abs=0.05), (
                    f"source {source} target {target}"
                )

    def test_sigma_matches_monte_carlo_spread(self):
        from repro.propagation import estimate_spread

        graph = SocialGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        collection = build_collection(graph, 60_000, seed=9)
        for seed_node in range(4):
            mc = estimate_spread(graph, seed_node, runs=20_000, seed=10)
            assert collection.sigma(seed_node) == pytest.approx(mc, rel=0.08)
