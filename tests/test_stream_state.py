"""Tests for repro.stream.state — live pools and the spatial task index."""

import pytest

from repro.assignment import NearestNeighborAssigner
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.geo import Point
from repro.stream import (
    StreamState,
    TaskCancelEvent,
    TaskExpiryEvent,
    TaskPublishEvent,
    WorkerArrivalEvent,
    WorkerChurnEvent,
)


def make_instance():
    return SCInstance(
        name="state-test", current_time=0.0, tasks=[], workers=[], histories={},
        social_edges=[], all_worker_ids=tuple(range(50)),
    )


def make_worker(worker_id, x=0.0, y=0.0, radius=10.0):
    return Worker(worker_id=worker_id, location=Point(x, y), reachable_km=radius)


def make_task(task_id, x=1.0, y=0.0, published=0.0, phi=5.0):
    return Task(
        task_id=task_id, location=Point(x, y), publication_time=published,
        valid_hours=phi,
    )


@pytest.fixture()
def state():
    return StreamState(make_instance(), influence=None)


class TestEventApplication:
    def test_arrival_and_publish_fill_pools(self, state):
        state.apply(WorkerArrivalEvent(time=1.0, worker=make_worker(3)))
        state.apply(TaskPublishEvent(time=2.0, task=make_task(7)))
        assert state.num_online_workers == 1
        assert state.num_open_tasks == 1
        assert state.arrived_at[3] == pytest.approx(1.0)
        assert state.published_at[7] == pytest.approx(2.0)
        assert len(state.task_index) == 1

    def test_rearrival_replaces_worker(self, state):
        state.apply(WorkerArrivalEvent(time=1.0, worker=make_worker(3, x=0.0)))
        state.apply(WorkerArrivalEvent(time=4.0, worker=make_worker(3, x=9.0)))
        assert state.num_online_workers == 1
        assert state.workers[3].location.x == pytest.approx(9.0)
        assert state.arrived_at[3] == pytest.approx(4.0)

    def test_republish_replaces_task_and_index_entry(self, state):
        state.apply(TaskPublishEvent(time=0.0, task=make_task(7, x=1.0)))
        state.apply(TaskPublishEvent(time=1.0, task=make_task(7, x=30.0)))
        assert state.num_open_tasks == 1
        assert len(state.task_index) == 1
        near = list(state.tasks_near(Point(30.0, 0.0), 1.0))
        assert [t.task_id for t in near] == [7]

    def test_cancel_and_expiry_remove_tasks(self, state):
        state.apply(TaskPublishEvent(time=0.0, task=make_task(1)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(2, x=5.0)))
        state.apply(TaskCancelEvent(time=1.0, task_id=1))
        state.apply(TaskExpiryEvent(time=5.0, task_id=2))
        assert state.num_open_tasks == 0
        assert len(state.task_index) == 0

    def test_cancel_unknown_task_is_noop(self, state):
        state.apply(TaskCancelEvent(time=1.0, task_id=99))
        state.apply(TaskExpiryEvent(time=1.0, task_id=98))
        assert state.num_open_tasks == 0

    def test_churn_removes_worker(self, state):
        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(3)))
        state.apply(WorkerChurnEvent(time=2.0, worker_id=3))
        state.apply(WorkerChurnEvent(time=2.0, worker_id=44))  # unknown: no-op
        assert state.num_online_workers == 0

    def test_apply_reports_actual_retirements(self, state):
        assert state.apply(TaskPublishEvent(time=0.0, task=make_task(1))) == (False, False)
        assert state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(2))) == (False, False)
        assert state.apply(TaskExpiryEvent(time=1.0, task_id=1)) == (True, False)
        assert state.apply(TaskCancelEvent(time=1.0, task_id=9)) == (False, False)
        assert state.apply(WorkerChurnEvent(time=1.0, worker_id=2)) == (False, True)
        assert state.apply(WorkerChurnEvent(time=1.0, worker_id=2)) == (False, False)


class TestSweeps:
    def test_expire_tasks_is_strict(self, state):
        state.apply(TaskPublishEvent(time=0.0, task=make_task(1, published=0.0, phi=2.0)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(2, x=5.0, published=0.0, phi=4.0)))
        assert state.expire_tasks(2.0) == []  # deadline == now: still open
        expired = state.expire_tasks(2.5)
        assert [t.task_id for t in expired] == [1]
        assert state.num_open_tasks == 1
        assert len(state.task_index) == 1

    def test_churn_workers_strict_patience(self, state):
        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(1)))
        state.apply(WorkerArrivalEvent(time=3.0, worker=make_worker(2)))
        assert state.churn_workers(2.0, None) == []
        assert state.churn_workers(2.0, 2.0) == []  # == patience: stays
        assert state.churn_workers(2.5, 2.0) == [1]
        assert state.num_online_workers == 1


class TestQueriesAndRounds:
    def test_tasks_near_uses_live_index(self, state):
        state.apply(TaskPublishEvent(time=0.0, task=make_task(1, x=1.0)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(2, x=100.0)))
        near = sorted(t.task_id for t in state.tasks_near(Point(0.0, 0.0), 5.0))
        assert near == [1]

    def test_round_instance_sorted_and_timed(self, state):
        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(5)))
        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(2)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(9)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(4, x=2.0)))
        instance = state.round_instance(3.5)
        assert [w.worker_id for w in instance.workers] == [2, 5]
        assert [t.task_id for t in instance.tasks] == [4, 9]
        assert instance.current_time == pytest.approx(3.5)

    def test_run_assignment_retires_matched_pairs(self, state):
        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(1, x=0.0)))
        state.apply(TaskPublishEvent(time=0.5, task=make_task(7, x=1.0)))
        assignment, waits = state.run_assignment(NearestNeighborAssigner(), 2.0)
        assert len(assignment) == 1
        assert waits == [(pytest.approx(1.5), pytest.approx(2.0))]
        assert state.num_online_workers == 0
        assert state.num_open_tasks == 0
        assert len(state.task_index) == 0
        assert state.arrived_at == {} and state.published_at == {}

    def test_timestamp_maps_track_pools_on_every_retirement(self, state):
        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(1)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(3)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(4, x=5.0, phi=1.0)))
        state.apply(TaskCancelEvent(time=1.0, task_id=3))
        state.expire_tasks(2.0)
        state.churn_workers(5.0, 2.0)
        assert state.published_at == {}
        assert state.arrived_at == {}
        state.apply(WorkerArrivalEvent(time=6.0, worker=make_worker(2)))
        state.apply(WorkerChurnEvent(time=7.0, worker_id=2))
        assert state.arrived_at == {}

    def test_non_incremental_preparation(self):
        state = StreamState(make_instance(), influence=None, incremental=False)
        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(1)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(7)))
        prepared = state.prepare_round(0.0)
        assert prepared.feasible.num_feasible == 1


class TestRelocation:
    def test_relocates_live_worker_keeping_arrival_time(self, state):
        from repro.stream import WorkerRelocateEvent

        state.apply(WorkerArrivalEvent(time=1.0, worker=make_worker(3)))
        state.apply(WorkerRelocateEvent(time=4.0, worker_id=3,
                                        location=Point(9.0, 9.0)))
        assert state.num_online_workers == 1
        assert state.workers[3].location == Point(9.0, 9.0)
        assert state.workers[3].reachable_km == 10.0  # attributes preserved
        assert state.arrived_at[3] == pytest.approx(1.0)  # wait keeps accruing

    def test_relocation_of_absent_worker_is_noop(self, state):
        from repro.stream import WorkerRelocateEvent

        removed = state.apply(WorkerRelocateEvent(time=1.0, worker_id=8,
                                                  location=Point(1.0, 1.0)))
        assert removed == (False, False)
        assert state.num_online_workers == 0

    def test_relocation_after_assignment_is_noop(self, state):
        from repro.stream import WorkerRelocateEvent

        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(3)))
        state.apply(TaskPublishEvent(time=0.0, task=make_task(7)))
        assignment, _ = state.run_assignment(NearestNeighborAssigner(), 1.0)
        assert len(assignment) == 1
        state.apply(WorkerRelocateEvent(time=2.0, worker_id=3,
                                        location=Point(5.0, 5.0)))
        assert state.num_online_workers == 0

    def test_relocation_feeds_next_round_feasibility(self, state):
        """After relocating, a previously unreachable task becomes the
        worker's match — the RoundState caches must not serve stale rows."""
        from repro.stream import WorkerRelocateEvent

        state.apply(WorkerArrivalEvent(time=0.0, worker=make_worker(1, radius=4.0)))
        far = make_task(2, x=30.0, phi=50.0)
        state.apply(TaskPublishEvent(time=0.0, task=far))
        assignment, _ = state.run_assignment(NearestNeighborAssigner(), 1.0)
        assert len(assignment) == 0
        state.apply(WorkerRelocateEvent(time=2.0, worker_id=1,
                                        location=Point(29.0, 0.0)))
        assignment, waits = state.run_assignment(NearestNeighborAssigner(), 3.0)
        assert [(p.worker.worker_id, p.task.task_id) for p in assignment] == [(1, 2)]
        # Task waited 3h from publication; worker 3h from *arrival* (t=0).
        assert waits == [(3.0, 3.0)]

    def test_columnar_slice_counts_applied_relocations_only(self, state):
        import numpy as np

        from repro.stream.events import EventLog, KIND_RELOCATE

        from repro.stream import WorkerArrivalEvent as Arrive
        from repro.stream import WorkerChurnEvent as Churn
        from repro.stream import WorkerRelocateEvent as Move

        log = EventLog([
            Arrive(time=0.0, worker=make_worker(1)),
            Arrive(time=0.0, worker=make_worker(2)),
            Churn(time=1.0, worker_id=2),
            Move(time=2.0, worker_id=1, location=Point(3.0, 3.0)),   # applies
            Move(time=2.5, worker_id=2, location=Point(4.0, 4.0)),   # no-op
        ])
        expired, churned, cancelled, relocated = state.apply_log_slice(
            log, 0, len(log)
        )
        assert (expired, churned, cancelled, relocated) == (0, 1, 0, 1)
        assert state.workers[1].location == Point(3.0, 3.0)
        assert 2 not in state.workers
        assert int((log.kinds == KIND_RELOCATE).sum()) == 2
