"""Tests for the Historical Acceptance willingness model (Eq. 2)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.geo import Point
from repro.willingness import HistoricalAcceptance


class TestHistoricalAcceptance:
    def test_requires_fit(self):
        model = HistoricalAcceptance()
        with pytest.raises(NotFittedError):
            model.willingness(0, Point(0, 0))

    def test_worker_without_history_gets_zero(self, history_factory):
        model = HistoricalAcceptance().fit({0: history_factory(0, [])})
        assert model.willingness(0, Point(0, 0)) == 0.0

    def test_single_record_below_min_history_gets_zero(self, history_factory):
        model = HistoricalAcceptance(min_history=2).fit(
            {0: history_factory(0, [(0, 0, 1.0)])}
        )
        assert model.willingness(0, Point(0, 0)) == 0.0

    def test_willingness_at_visited_location_is_high(self, history_factory):
        histories = {0: history_factory(0, [(0, 0, 1.0), (1, 0, 2.0), (0, 0, 3.0)])}
        model = HistoricalAcceptance().fit(histories)
        near = model.willingness(0, Point(0, 0))
        far = model.willingness(0, Point(40, 40))
        assert near > far
        assert near > 0.1

    def test_willingness_decreases_with_distance(self, history_factory):
        histories = {0: history_factory(0, [(0, 0, 1.0), (2, 0, 2.0), (0, 0, 3.0)])}
        model = HistoricalAcceptance().fit(histories)
        values = [model.willingness(0, Point(d, 0.0)) for d in (0.0, 5.0, 15.0, 40.0)]
        assert values == sorted(values, reverse=True)

    def test_willingness_is_probability_like(self, history_factory):
        """Eq. 2 is a convex combination of tail probabilities, so <= 1."""
        histories = {0: history_factory(0, [(0, 0, 1.0), (3, 4, 2.0), (1, 1, 3.0)])}
        model = HistoricalAcceptance().fit(histories)
        for target in (Point(0, 0), Point(2, 2), Point(100, 0)):
            assert 0.0 <= model.willingness(0, target) <= 1.0

    def test_willingness_all_matches_pairwise(self, history_factory):
        histories = {
            0: history_factory(0, [(0, 0, 1.0), (1, 0, 2.0)]),
            1: history_factory(1, [(5, 5, 1.0), (6, 5, 2.0), (5, 5, 3.0)]),
            2: history_factory(2, []),
        }
        model = HistoricalAcceptance().fit(histories)
        target = Point(1.0, 1.0)
        bulk = model.willingness_all(target)
        assert bulk.shape == (3,)
        for worker_id in (0, 1, 2):
            assert bulk[model.row_of(worker_id)] == pytest.approx(
                model.willingness(worker_id, target)
            )

    def test_willingness_all_on_empty_population(self, history_factory):
        model = HistoricalAcceptance().fit({0: history_factory(0, [])})
        out = model.willingness_all(Point(0, 0))
        assert out.shape == (1,)
        assert out[0] == 0.0

    def test_worker_ids_sorted(self, history_factory):
        histories = {
            9: history_factory(9, [(0, 0, 1.0), (1, 1, 2.0)]),
            3: history_factory(3, [(0, 0, 1.0), (1, 1, 2.0)]),
        }
        model = HistoricalAcceptance().fit(histories)
        assert model.worker_ids == [3, 9]

    def test_stationary_times_tail_structure(self, history_factory):
        """The model equals sum_i P_w(i) * (d_i + 1)^-pi by construction."""
        histories = {0: history_factory(0, [(0, 0, 1.0), (10, 0, 2.0)])}
        model = HistoricalAcceptance().fit(histories)
        mob = model.models[0]
        target = Point(0.0, 0.0)
        manual = sum(
            float(p) * (loc.distance_to(target) + 1.0) ** (-mob.pareto_shape)
            for loc, p in zip(mob.stationary.locations, mob.stationary.probabilities)
        )
        assert model.willingness(0, target) == pytest.approx(manual)

    def test_fit_on_real_instance(self, tiny_instance):
        model = HistoricalAcceptance().fit(tiny_instance.histories)
        task = tiny_instance.tasks[0]
        bulk = model.willingness_all(task.location)
        assert bulk.shape == (len(tiny_instance.all_worker_ids),)
        assert (bulk >= 0).all() and (bulk <= 1.0 + 1e-9).all()
        assert bulk.max() > 0.0  # someone has willingness toward some task
