"""Tests for repro.data.validation — dataset statistical checks."""

import numpy as np
import pytest

from repro.data import CheckInDataset, Venue, validate_dataset
from repro.data.validation import (
    check_category_concentration,
    check_degree_heavy_tail,
    check_integrity,
    check_movement_self_similarity,
)
from repro.entities import CheckIn
from repro.geo import Point


def build_dataset(checkin_rows, edges, categories=("cafe",)):
    """Rows are (user, venue, x, y, t)."""
    venues = {}
    checkins = []
    for user, venue, x, y, t in checkin_rows:
        if venue not in venues:
            venues[venue] = Venue(
                venue_id=venue, location=Point(x, y), categories=tuple(categories)
            )
        checkins.append(
            CheckIn(
                user_id=user,
                venue_id=venue,
                location=venues[venue].location,
                time=t,
                categories=venues[venue].categories,
            )
        )
    users = {r[0] for r in checkin_rows}
    return CheckInDataset.build(
        name="handmade",
        venues=venues.values(),
        checkins=checkins,
        social_edges=edges,
        user_ids=users,
    )


class TestIntegrity:
    def test_clean_dataset_passes(self, tiny_dataset):
        result = check_integrity(tiny_dataset)
        assert result.passed
        assert result.measurements["users"] == tiny_dataset.num_users

    def test_str_contains_verdict(self, tiny_dataset):
        assert "[PASS] integrity" in str(check_integrity(tiny_dataset))


class TestDegreeHeavyTail:
    def test_no_edges_fails(self):
        dataset = build_dataset([(0, 0, 0.0, 0.0, 1.0)], edges=[])
        result = check_degree_heavy_tail(dataset)
        assert not result.passed

    def test_star_graph_passes(self):
        # One hub with 20 leaves: max degree 20 vs mean < 2.
        rows = [(i, 0, 0.0, 0.0, float(i)) for i in range(21)]
        edges = [(0, i) for i in range(1, 21)]
        result = check_degree_heavy_tail(build_dataset(rows, edges))
        assert result.passed
        assert result.measurements["max_degree"] == 20

    def test_ring_graph_fails(self):
        # Every node has degree exactly 2 — no heavy tail.
        n = 30
        rows = [(i, 0, 0.0, 0.0, float(i)) for i in range(n)]
        edges = [(i, (i + 1) % n) for i in range(n)]
        result = check_degree_heavy_tail(build_dataset(rows, edges))
        assert not result.passed

    def test_synthetic_world_passes(self, tiny_dataset):
        assert check_degree_heavy_tail(tiny_dataset).passed


class TestMovementSelfSimilarity:
    def test_synthetic_world_passes(self, tiny_dataset):
        result = check_movement_self_similarity(tiny_dataset)
        assert result.passed
        assert result.measurements["pareto_win_rate"] >= 0.5

    def test_no_mobile_history_fails(self):
        dataset = build_dataset([(0, 0, 0.0, 0.0, 1.0)], edges=[])
        assert not check_movement_self_similarity(dataset).passed

    def test_heavy_tailed_jumps_prefer_pareto(self):
        """Users whose jumps are Pareto-drawn must be classified as such."""
        rng = np.random.default_rng(4)
        rows = []
        venue = 0
        for user in range(12):
            x = 0.0
            for step in range(15):
                # numpy's pareto() is the Lomax form: P(d > t) = (1+t)^-a,
                # i.e. exactly the shifted-Pareto movement model of HA.
                jump = float(rng.pareto(1.5))
                x += jump
                rows.append((user, venue, x, 0.0, float(user * 100 + step)))
                venue += 1
        dataset = build_dataset(rows, edges=[])
        result = check_movement_self_similarity(dataset)
        assert result.passed
        assert result.measurements["pareto_win_rate"] > 0.8


class TestCategoryConcentration:
    def test_synthetic_world_passes(self, tiny_dataset):
        assert check_category_concentration(tiny_dataset).passed

    def test_single_category_users_fail_gracefully(self):
        dataset = build_dataset(
            [(0, 0, 0.0, 0.0, 1.0), (0, 0, 0.0, 0.0, 2.0)], edges=[]
        )
        result = check_category_concentration(dataset)
        assert not result.passed
        assert "categories" in result.detail


class TestValidateDataset:
    def test_full_report_on_synthetic(self, tiny_dataset):
        report = validate_dataset(tiny_dataset)
        assert report.passed
        assert len(report.checks) == 4
        assert "validation of tiny" in str(report)

    def test_report_fails_when_any_check_fails(self):
        dataset = build_dataset([(0, 0, 0.0, 0.0, 1.0)], edges=[])
        report = validate_dataset(dataset)
        assert not report.passed
