"""Randomized oracle suite: the from-scratch flow solvers vs scipy.

~200 seeded random instances cross-check the exact combinatorial engines
against independent implementations:

* ``Dinic.max_flow`` (and ``edmonds_karp`` on a subset) against
  ``scipy.sparse.csgraph.maximum_flow`` on random digraphs and bipartite
  assignment graphs, unit and integer capacities, sparse through dense;
* ``MinCostMaxFlow`` and the bipartite substrate engine against
  ``scipy.optimize.linear_sum_assignment`` via the standard lexicographic
  big-penalty reduction — asserting equal flow value *and* equal optimal
  cost.

Integer costs are used on half the MCMF instances so ties are exercised,
not just the generic unique-optimum case.
"""

import numpy as np
import pytest
from scipy import sparse
from scipy.optimize import linear_sum_assignment
from scipy.sparse.csgraph import maximum_flow

from repro.flow import Dinic, FlowNetwork, MinCostMaxFlow, edmonds_karp, min_cost_matching


def random_digraph(rng, max_nodes=12, max_capacity=10):
    """A random capacity matrix without self-loops; returns (matrix, s, t)."""
    num_nodes = int(rng.integers(2, max_nodes + 1))
    density = float(rng.uniform(0.15, 0.9))
    capacity = rng.integers(1, max_capacity + 1, size=(num_nodes, num_nodes))
    keep = rng.random((num_nodes, num_nodes)) < density
    np.fill_diagonal(keep, False)
    capacity = np.where(keep, capacity, 0)
    return capacity, 0, num_nodes - 1


def random_bipartite_matrix(rng, max_side=14, unit=True, max_capacity=5):
    """Capacity matrix of a source/workers/tasks/sink assignment graph."""
    num_left = int(rng.integers(1, max_side + 1))
    num_right = int(rng.integers(1, max_side + 1))
    density = float(rng.uniform(0.1, 1.0))
    num_nodes = num_left + num_right + 2
    source, sink = 0, num_nodes - 1
    capacity = np.zeros((num_nodes, num_nodes), dtype=np.int64)
    capacity[source, 1 : 1 + num_left] = 1 if unit else rng.integers(
        1, max_capacity + 1, num_left
    )
    capacity[1 + num_left : 1 + num_left + num_right, sink] = 1 if unit else (
        rng.integers(1, max_capacity + 1, num_right)
    )
    mask = rng.random((num_left, num_right)) < density
    pair_caps = (
        np.ones((num_left, num_right), dtype=np.int64)
        if unit
        else rng.integers(1, max_capacity + 1, (num_left, num_right))
    )
    capacity[1 : 1 + num_left, 1 + num_left : 1 + num_left + num_right] = np.where(
        mask, pair_caps, 0
    )
    return capacity, source, sink


def network_from_matrix(capacity):
    """Build a :class:`FlowNetwork` from a dense capacity matrix."""
    network = FlowNetwork(capacity.shape[0])
    rows, columns = np.nonzero(capacity)
    if rows.size:
        network.add_edges(rows, columns, capacity[rows, columns])
    return network


def scipy_max_flow(capacity, source, sink):
    graph = sparse.csr_matrix(capacity.astype(np.int32))
    return int(maximum_flow(graph, source, sink).flow_value)


class TestMaxFlowOracle:
    @pytest.mark.parametrize("seed", range(40))
    def test_dinic_on_random_digraphs(self, seed):
        rng = np.random.default_rng(1000 + seed)
        capacity, source, sink = random_digraph(rng)
        expected = scipy_max_flow(capacity, source, sink)
        network = network_from_matrix(capacity)
        assert Dinic(network).max_flow(source, sink) == expected

    @pytest.mark.parametrize("seed", range(30))
    def test_dinic_on_unit_bipartite(self, seed):
        rng = np.random.default_rng(2000 + seed)
        capacity, source, sink = random_bipartite_matrix(rng, unit=True)
        expected = scipy_max_flow(capacity, source, sink)
        network = network_from_matrix(capacity)
        assert Dinic(network).max_flow(source, sink) == expected

    @pytest.mark.parametrize("seed", range(30))
    def test_dinic_on_integer_bipartite(self, seed):
        rng = np.random.default_rng(3000 + seed)
        capacity, source, sink = random_bipartite_matrix(rng, unit=False)
        expected = scipy_max_flow(capacity, source, sink)
        network = network_from_matrix(capacity)
        assert Dinic(network).max_flow(source, sink) == expected

    @pytest.mark.parametrize("seed", range(20))
    def test_edmonds_karp_agrees(self, seed):
        rng = np.random.default_rng(4000 + seed)
        capacity, source, sink = random_digraph(rng, max_nodes=9)
        expected = scipy_max_flow(capacity, source, sink)
        network = network_from_matrix(capacity)
        assert edmonds_karp(network, source, sink) == expected


def lexicographic_oracle(cost, mask):
    """Max-cardinality-then-min-cost via scipy's Jonker-Volgenant solver."""
    if not mask.any():
        return 0, 0.0
    finite = cost[mask]
    big = (float(finite.max(initial=0.0)) + 1.0) * (min(cost.shape) + 1)
    padded = np.where(mask, cost, big)
    rows, columns = linear_sum_assignment(padded)
    keep = mask[rows, columns]
    return int(keep.sum()), float(cost[rows[keep], columns[keep]].sum())


def random_costs(rng, max_side=12):
    num_left = int(rng.integers(1, max_side + 1))
    num_right = int(rng.integers(1, max_side + 1))
    density = float(rng.uniform(0.1, 1.0))
    mask = rng.random((num_left, num_right)) < density
    if rng.random() < 0.5:
        # Integer costs: exercises ties between distinct optima.
        cost = rng.integers(0, 8, size=(num_left, num_right)).astype(float)
    else:
        cost = rng.random((num_left, num_right)) * 9
    return cost, mask


def mcmf_on_figure4(cost, mask):
    """Flow value and total cost of the general solver on the Figure-4 graph."""
    num_left, num_right = cost.shape
    source, sink = 0, num_left + num_right + 1
    network = FlowNetwork(num_left + num_right + 2)
    network.add_edges(
        np.zeros(num_left, dtype=np.int64),
        1 + np.arange(num_left),
        np.ones(num_left, dtype=np.int64),
    )
    network.add_edges(
        1 + num_left + np.arange(num_right),
        np.full(num_right, sink, dtype=np.int64),
        np.ones(num_right, dtype=np.int64),
    )
    rows, columns = np.nonzero(mask)
    if rows.size:
        network.add_edges(
            1 + rows,
            1 + num_left + columns,
            np.ones(len(rows), dtype=np.int64),
            cost[rows, columns],
        )
    result = MinCostMaxFlow(network).solve(source, sink)
    return result.max_flow, result.total_cost


class TestMinCostOracle:
    @pytest.mark.parametrize("seed", range(50))
    def test_general_solver_vs_linear_sum_assignment(self, seed):
        rng = np.random.default_rng(5000 + seed)
        cost, mask = random_costs(rng)
        expected_flow, expected_cost = lexicographic_oracle(cost, mask)
        flow, total = mcmf_on_figure4(cost, mask)
        assert flow == expected_flow
        assert total == pytest.approx(expected_cost, abs=1e-8)

    @pytest.mark.parametrize("seed", range(50))
    def test_bipartite_substrate_vs_linear_sum_assignment(self, seed):
        rng = np.random.default_rng(6000 + seed)
        cost, mask = random_costs(rng)
        expected_flow, expected_cost = lexicographic_oracle(cost, mask)
        result = min_cost_matching(cost, mask)
        assert len(result.pairs) == expected_flow
        assert result.total_cost == pytest.approx(expected_cost, abs=1e-8)

    @pytest.mark.parametrize("seed", range(10))
    def test_engines_agree_with_each_other(self, seed):
        """Belt and braces: both from-scratch engines, same instance."""
        rng = np.random.default_rng(7000 + seed)
        cost, mask = random_costs(rng, max_side=18)
        flow, total = mcmf_on_figure4(cost, mask)
        result = min_cost_matching(cost, mask)
        assert flow == len(result.pairs)
        assert total == pytest.approx(result.total_cost, abs=1e-8)
