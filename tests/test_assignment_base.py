"""Tests for feasibility computation and PreparedInstance."""

import numpy as np
import pytest

from repro.assignment import compute_feasible, PreparedInstance
from repro.entities import Task, Worker
from repro.geo import Point


class TestComputeFeasible:
    def test_empty_inputs(self):
        feasible = compute_feasible([], [], current_time=0.0)
        assert feasible.num_feasible == 0
        assert feasible.mask.shape == (0, 0)

    def test_radius_constraint(self):
        workers = [Worker(worker_id=0, location=Point(0, 0), reachable_km=5.0, speed_kmh=1000.0)]
        tasks = [
            Task(task_id=0, location=Point(3, 0), publication_time=0.0, valid_hours=100.0),
            Task(task_id=1, location=Point(8, 0), publication_time=0.0, valid_hours=100.0),
        ]
        feasible = compute_feasible(workers, tasks, current_time=0.0)
        assert feasible.mask[0, 0] and not feasible.mask[0, 1]

    def test_radius_border_inclusive(self):
        workers = [Worker(worker_id=0, location=Point(0, 0), reachable_km=5.0, speed_kmh=1000.0)]
        tasks = [Task(task_id=0, location=Point(5, 0), publication_time=0.0, valid_hours=100.0)]
        feasible = compute_feasible(workers, tasks, current_time=0.0)
        assert feasible.mask[0, 0]

    def test_deadline_constraint(self):
        # Worker at 5 km with 5 km/h needs 1 h; task expires in 0.5 h.
        workers = [Worker(worker_id=0, location=Point(0, 0), reachable_km=50.0, speed_kmh=5.0)]
        tight = Task(task_id=0, location=Point(5, 0), publication_time=0.0, valid_hours=0.5)
        loose = Task(task_id=1, location=Point(5, 0), publication_time=0.0, valid_hours=2.0)
        feasible = compute_feasible(workers, [tight, loose], current_time=0.0)
        assert not feasible.mask[0, 0]
        assert feasible.mask[0, 1]

    def test_current_time_shifts_deadline(self):
        workers = [Worker(worker_id=0, location=Point(0, 0), reachable_km=50.0, speed_kmh=5.0)]
        task = Task(task_id=0, location=Point(5, 0), publication_time=0.0, valid_hours=2.0)
        assert compute_feasible(workers, [task], current_time=0.0).mask[0, 0]
        assert not compute_feasible(workers, [task], current_time=1.5).mask[0, 0]

    def test_distance_matrix_correct(self, square_workers, square_tasks):
        feasible = compute_feasible(square_workers, square_tasks, current_time=0.0)
        assert feasible.distance_km[0, 0] == pytest.approx(
            square_workers[0].location.distance_to(square_tasks[0].location)
        )

    def test_per_worker_speed_honored(self):
        slow = Worker(worker_id=0, location=Point(0, 0), reachable_km=50.0, speed_kmh=1.0)
        fast = Worker(worker_id=1, location=Point(0, 0), reachable_km=50.0, speed_kmh=100.0)
        task = Task(task_id=0, location=Point(10, 0), publication_time=0.0, valid_hours=1.0)
        feasible = compute_feasible([slow, fast], [task], current_time=0.0)
        assert not feasible.mask[0, 0]
        assert feasible.mask[1, 0]

    def test_feasible_indices_match_mask(self, square_workers, square_tasks):
        feasible = compute_feasible(square_workers, square_tasks, current_time=0.0)
        rows, columns = feasible.feasible_indices()
        assert len(rows) == feasible.num_feasible
        for r, c in zip(rows, columns):
            assert feasible.mask[r, c]


class TestPreparedInstance:
    def test_caches_are_lazy_and_stable(self, tiny_instance, full_influence):
        prepared = PreparedInstance(tiny_instance, full_influence)
        first = prepared.influence_matrix
        second = prepared.influence_matrix
        assert first is second

    def test_without_model_influence_is_zero(self, tiny_instance):
        prepared = PreparedInstance(tiny_instance, influence=None)
        assert prepared.influence_matrix.sum() == 0.0

    def test_entropy_vector_alignment(self, prepared, tiny_instance):
        vector = prepared.entropy_vector()
        assert vector.shape == (tiny_instance.num_tasks,)
        assert (vector >= 0).all()

    def test_build_assignment_validates_feasibility(self, prepared):
        mask = prepared.feasible.mask
        infeasible = np.argwhere(~mask)
        if len(infeasible):
            row, column = map(int, infeasible[0])
            with pytest.raises(ValueError):
                prepared.build_assignment([(row, column)])

    def test_build_assignment_constructs_pairs(self, prepared, tiny_instance):
        rows, columns = prepared.feasible.feasible_indices()
        if len(rows):
            assignment = prepared.build_assignment([(int(rows[0]), int(columns[0]))])
            assert len(assignment) == 1


class TestBuildAssignmentUniqueness:
    @pytest.fixture()
    def wide_prepared(self):
        from repro.data.instance import SCInstance
        from repro.geo import Point

        workers = [
            Worker(worker_id=i, location=Point(0.0, 0.0), reachable_km=50.0, speed_kmh=100.0)
            for i in range(2)
        ]
        tasks = [
            Task(task_id=j, location=Point(1.0, 0.0), publication_time=0.0, valid_hours=10.0)
            for j in range(2)
        ]
        instance = SCInstance(
            name="uniq",
            current_time=0.0,
            tasks=tasks,
            workers=workers,
            histories={},
            social_edges=[],
            all_worker_ids=(0, 1),
        )
        return PreparedInstance(instance)

    def test_duplicate_worker_rejected(self, wide_prepared):
        with pytest.raises(ValueError, match="worker row 0 .* more than one task"):
            wide_prepared.build_assignment([(0, 0), (0, 1)])

    def test_duplicate_task_rejected(self, wide_prepared):
        with pytest.raises(ValueError, match="task column 1 .* more than one worker"):
            wide_prepared.build_assignment([(0, 1), (1, 1)])

    def test_disjoint_pairs_accepted(self, wide_prepared):
        assignment = wide_prepared.build_assignment([(0, 0), (1, 1)])
        assert len(assignment) == 2
