"""Property-based invariants of the array-native flow core.

Hypothesis-generated networks check, after solving:

* flow conservation at every non-terminal node;
* capacity feasibility (0 <= flow <= capacity on every forward edge);
* antisymmetry of paired edges (forward residual + twin residual = original
  capacity; twin's residual *is* the forward flow);
* complementary slackness on the final MCMF residual graph: the solver's
  final potentials price every residual edge at non-negative reduced cost,
  hence the residual graph has no negative-cost cycle and every cycle of
  tight (zero-reduced-cost) edges certifies optimality;
* the two shortest-path engines (frontier scan / Dijkstra) produce the same
  optimum;
* the pre-rewrite SPFA hazard: a negative-cost cycle now raises
  :class:`FlowError` instead of relaxing forever.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FlowError
from repro.flow import Dinic, FlowNetwork, MinCostMaxFlow, bellman_ford_potentials


def build_network(num_nodes, edges):
    network = FlowNetwork(num_nodes)
    original_caps = {}
    for source, target, capacity, cost in edges:
        edge_id = network.add_edge(source, target, capacity, cost)
        original_caps[edge_id] = capacity
    return network, original_caps


@st.composite
def random_networks(draw):
    """A random multigraph with non-negative costs and terminal nodes 0/n-1."""
    num_nodes = draw(st.integers(3, 9))
    num_edges = draw(st.integers(1, 24))
    edges = []
    for _ in range(num_edges):
        source = draw(st.integers(0, num_nodes - 1))
        target = draw(st.integers(0, num_nodes - 1))
        if source == target:
            continue
        capacity = draw(st.integers(0, 7))
        cost = draw(st.integers(0, 9)) / draw(st.sampled_from([1, 2, 4]))
        edges.append((source, target, capacity, cost))
    return num_nodes, edges


def check_flow_invariants(network, original_caps, source, sink, flow_value):
    heads = network.edge_to
    net_out = np.zeros(network.num_nodes)
    for edge_id, capacity in original_caps.items():
        flow = network.flow_on(edge_id)
        # Capacity feasibility.
        assert 0 <= flow <= capacity
        # Antisymmetry of the residual pair.
        assert network.residual(edge_id) == capacity - flow
        assert network.residual(edge_id ^ 1) == flow
        tail = int(heads[edge_id ^ 1])
        head = int(heads[edge_id])
        net_out[tail] += flow
        net_out[head] -= flow
    # Conservation everywhere except the terminals.
    for node in range(network.num_nodes):
        if node == source:
            assert net_out[node] == flow_value
        elif node == sink:
            assert net_out[node] == -flow_value
        else:
            assert net_out[node] == 0


class TestMaxFlowInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_networks())
    def test_dinic_flow_is_feasible_and_conserved(self, network_spec):
        num_nodes, edges = network_spec
        network, original_caps = build_network(num_nodes, edges)
        value = Dinic(network).max_flow(0, num_nodes - 1)
        check_flow_invariants(network, original_caps, 0, num_nodes - 1, value)

    @settings(max_examples=40, deadline=None)
    @given(random_networks())
    def test_dinic_residual_has_no_augmenting_path(self, network_spec):
        """Max-flow certificate: the sink is BFS-unreachable afterwards."""
        num_nodes, edges = network_spec
        network, _ = build_network(num_nodes, edges)
        Dinic(network).max_flow(0, num_nodes - 1)
        indptr, csr_edges = network.csr()
        cap = network.edge_cap
        heads = network.edge_to
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for position in range(indptr[node], indptr[node + 1]):
                edge_id = int(csr_edges[position])
                target = int(heads[edge_id])
                if cap[edge_id] > 0 and target not in seen:
                    seen.add(target)
                    stack.append(target)
        assert (num_nodes - 1) not in seen


class TestMinCostInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_networks())
    def test_mcmf_flow_is_feasible_and_conserved(self, network_spec):
        num_nodes, edges = network_spec
        network, original_caps = build_network(num_nodes, edges)
        result = MinCostMaxFlow(network).solve(0, num_nodes - 1)
        check_flow_invariants(
            network, original_caps, 0, num_nodes - 1, result.max_flow
        )

    @settings(max_examples=60, deadline=None)
    @given(random_networks())
    def test_complementary_slackness_on_final_residual(self, network_spec):
        """Every residual edge prices non-negative under the final
        potentials, so the residual graph carries no negative-cost cycle:
        the certificate that the flow is cost-minimal at its value."""
        num_nodes, edges = network_spec
        network, _ = build_network(num_nodes, edges)
        solver = MinCostMaxFlow(network)
        solver.solve(0, num_nodes - 1)
        potential = solver.potential
        assert potential is not None
        cap = network.edge_cap
        cost = network.edge_cost
        heads = network.edge_to
        tails = network.edge_tail
        residual = np.nonzero(cap[: len(heads)] > 0)[0]
        reduced = (
            cost[residual] + potential[tails[residual]] - potential[heads[residual]]
        )
        assert (reduced >= -1e-9).all()

    @settings(max_examples=30, deadline=None)
    @given(random_networks())
    def test_scan_and_dijkstra_engines_agree(self, network_spec):
        num_nodes, edges = network_spec
        net_a, _ = build_network(num_nodes, edges)
        net_b, _ = build_network(num_nodes, edges)
        scan = MinCostMaxFlow(net_a, engine="scan").solve(0, num_nodes - 1)
        dijkstra = MinCostMaxFlow(net_b, engine="dijkstra").solve(0, num_nodes - 1)
        assert scan.max_flow == dijkstra.max_flow
        assert scan.total_cost == pytest.approx(dijkstra.total_cost, abs=1e-8)

    def test_unknown_engine_rejected(self):
        with pytest.raises(FlowError):
            MinCostMaxFlow(FlowNetwork(2), engine="warp")


class TestNegativeCycleGuard:
    """Regression for the latent SPFA hazard: the pre-rewrite solver spun
    forever on a negative-cost residual cycle; the rewrite must raise."""

    def negative_cycle_network(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, capacity=2, cost=1.0)
        # 1 -> 2 -> 1 is a capacity-positive cycle of total cost -3.
        network.add_edge(1, 2, capacity=3, cost=-5.0)
        network.add_edge(2, 1, capacity=3, cost=2.0)
        network.add_edge(2, 3, capacity=1, cost=1.0)
        return network

    def test_mcmf_raises_instead_of_hanging(self):
        network = self.negative_cycle_network()
        with pytest.raises(FlowError, match="negative-cost cycle"):
            MinCostMaxFlow(network).solve(0, 3)

    def test_bellman_ford_guard_raises(self):
        network = self.negative_cycle_network()
        with pytest.raises(FlowError, match="negative-cost cycle"):
            bellman_ford_potentials(network, 0)

    def test_negative_costs_without_cycle_still_solve(self):
        """Plain negative costs (no cycle) stay supported: Bellman-Ford
        bootstraps valid potentials."""
        network = FlowNetwork(4)
        network.add_edge(0, 1, capacity=1, cost=-2.0)
        network.add_edge(0, 2, capacity=1, cost=1.0)
        network.add_edge(1, 3, capacity=1, cost=1.0)
        network.add_edge(2, 3, capacity=1, cost=-3.0)
        result = MinCostMaxFlow(network).solve(0, 3)
        assert result.max_flow == 2
        assert result.total_cost == pytest.approx(-3.0)

class TestPreFlowedNetwork:
    """The Johnson bootstrap must look at *active residual* costs: a network
    that already carries flow exposes negated twins of its used edges, which
    zero potentials would mis-price (and the clamp would silently mask).

    SSP's precondition is that the existing flow is min-cost for its value.
    A *suboptimal* pre-flow leaves a negative-cost cycle in the residual
    graph; pre-fix, the solver silently returned a cost-suboptimal result
    (and the pre-rewrite SPFA relaxed that cycle forever).  Post-fix the
    bootstrap prices the residual graph and raises.  An *optimal* pre-flow
    (warm restart) solves on correctly.
    """

    def figure4(self):
        # Workers a=1, b=2; tasks x=3, y=4; source 0, sink 5.
        network = FlowNetwork(6)
        edge = {}
        edge["sa"] = network.add_edge(0, 1, 1)
        edge["sb"] = network.add_edge(0, 2, 1)
        edge["ax"] = network.add_edge(1, 3, 1, cost=5.0)
        edge["ay"] = network.add_edge(1, 4, 1, cost=4.0)
        edge["bx"] = network.add_edge(2, 3, 1, cost=0.0)
        edge["by"] = network.add_edge(2, 4, 1, cost=3.0)
        edge["xt"] = network.add_edge(3, 5, 1)
        edge["yt"] = network.add_edge(4, 5, 1)
        return network, edge

    def test_suboptimal_preflow_raises(self):
        network, edge = self.figure4()
        # Pre-push one unit along s -> a -> x -> t (cost 5, suboptimal): the
        # residual then carries the negative cycle x ~> a -> y -> t ~> x
        # (-5 + 4 + 0 + 0 = -1), which SSP cannot price.
        for name in ("sa", "ax", "xt"):
            network.push(edge[name], 1)
        with pytest.raises(FlowError, match="negative-cost cycle"):
            MinCostMaxFlow(network).solve(0, 5)

    def test_optimal_preflow_warm_restarts(self):
        network, edge = self.figure4()
        # Pre-push the min-cost unit s -> b -> x -> t (cost 0): residual
        # twins are negative but cycle-free, so Bellman-Ford bootstraps
        # valid potentials and the solve completes the optimum.
        for name in ("sb", "bx", "xt"):
            network.push(edge[name], 1)
        result = MinCostMaxFlow(network).solve(0, 5)
        assert result.max_flow == 1
        assert result.total_cost == pytest.approx(4.0)
        assert network.flow_on(edge["ay"]) == 1
        assert network.flow_on(edge["bx"]) == 1
