"""Tests for repro.cli — the python -m repro command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST = ["--scale", "0.03", "--seed", "5"]
FAST_PIPELINE = ["--topics", "5", "--rrr-sets", "500"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_world_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--world", "gowalla"])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.world == "bk"
        assert args.scale == 0.1
        assert args.snap_dir is None


class TestInfo:
    def test_prints_statistics(self, capsys):
        assert main(["info", *FAST]) == 0
        out = capsys.readouterr().out
        assert "users" in out
        assert "richest days" in out

    def test_fs_world(self, capsys):
        assert main(["info", "--world", "fs", *FAST]) == 0
        assert "FS-like" in capsys.readouterr().out


class TestGenerateData:
    def test_writes_snap_files(self, tmp_path, capsys):
        out_dir = tmp_path / "world"
        assert main(["generate-data", *FAST, "--out", str(out_dir)]) == 0
        assert (out_dir / "edges.txt").exists()
        assert (out_dir / "checkins.txt").exists()
        assert (out_dir / "categories.txt").exists()

    def test_roundtrip_through_info(self, tmp_path, capsys):
        out_dir = tmp_path / "world"
        main(["generate-data", *FAST, "--out", str(out_dir)])
        capsys.readouterr()
        assert main(["info", "--snap-dir", str(out_dir)]) == 0
        assert "users" in capsys.readouterr().out


class TestAssign:
    def test_unknown_algorithm_fails(self, capsys):
        code = main(["assign", *FAST, "--algorithms", "XYZ"])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_metrics_table(self, capsys):
        code = main([
            "assign", *FAST, *FAST_PIPELINE,
            "--algorithms", "MTA", "NN",
            "--num-tasks", "30", "--num-workers", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MTA" in out and "NN" in out
        assert "assigned" in out

    def test_movement_and_affinity_knobs(self, capsys):
        code = main([
            "assign", *FAST, *FAST_PIPELINE,
            "--algorithms", "IA",
            "--affinity", "tfidf", "--movement", "exponential",
            "--num-tasks", "20", "--num-workers", "20",
        ])
        assert code == 0
        assert "IA" in capsys.readouterr().out


class TestSweep:
    def test_comparison_sweep_with_exports(self, tmp_path, capsys):
        json_path = tmp_path / "result.json"
        csv_path = tmp_path / "result.csv"
        code = main([
            "sweep", *FAST, *FAST_PIPELINE,
            "--parameter", "num_tasks", "--days", "1",
            "--out", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["parameter"] == "num_tasks"
        assert "MTA" in payload["series"]
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("algorithm,num_tasks")

    def test_ablation_sweep(self, capsys):
        code = main([
            "sweep", *FAST, *FAST_PIPELINE,
            "--parameter", "reachable_km", "--kind", "ablation", "--days", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "IA-WP" in out


class TestSeeds:
    def test_seed_table(self, capsys):
        code = main(["seeds", *FAST, "--k", "3", "--rrr-sets", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated spread" in out
        # Three ranked rows.
        assert all(f"\n    {rank} " in out for rank in (1, 2, 3))


class TestValidate:
    def test_synthetic_world_passes(self, capsys):
        assert main(["validate", *FAST]) == 0
        out = capsys.readouterr().out
        assert "[PASS] integrity" in out
        assert "movement-self-similarity" in out


class TestStream:
    def test_window_trigger_run(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--trigger", "window",
                     "--window-hours", "2"]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "rounds:" in out
        assert "round latency" in out

    def test_count_trigger_with_patience(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--trigger", "count",
                     "--batch-count", "10", "--patience-hours", "3"]) == 0
        assert "churned" in capsys.readouterr().out

    def test_adaptive_trigger(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--trigger", "adaptive",
                     "--latency-budget", "0.5"]) == 0
        assert "rounds:" in capsys.readouterr().out

    def test_with_influence_model(self, capsys):
        assert main(["stream", *FAST, *FAST_PIPELINE, "--algorithm", "IA",
                     "--trigger", "hybrid", "--batch-count", "20"]) == 0
        assert "assigned" in capsys.readouterr().out

    def test_show_rounds_zero_suppresses_table(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--show-rounds", "0"]) == 0
        out = capsys.readouterr().out
        assert "online" not in out  # no per-round table header
        assert "rounds:" in out  # summary still printed

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "4",
                     "--checkpoint", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "stopped after 4 rounds" in out
        assert checkpoint.exists()
        assert main(["stream", *FAST, "--no-influence",
                     "--resume", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "stopped after" not in out

    def test_sharded_run(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "sharded:" in out
        assert "rounds:" in out

    def test_segmented_run(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--days", "3",
                     "--segment-days", "1"]) == 0
        out = capsys.readouterr().out
        assert "segments:" in out
        assert "rounds:" in out

    def test_segment_days_must_be_positive(self, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--segment-days", "0"]) == 2
        assert "--segment-days must be >= 1" in capsys.readouterr().err

    def test_resume_with_mismatched_segmentation_fails_fast(
        self, tmp_path, capsys
    ):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--days", "3",
                     "--segment-days", "1", "--max-rounds", "2",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence", "--days", "3",
                     "--resume", str(checkpoint)]) == 2
        err = capsys.readouterr().err
        assert "segmented event-log run" in err
        assert "--segment-days" in err

    def test_executor_requires_shards(self, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--executor", "thread"]) == 2
        assert "--executor requires --shards" in capsys.readouterr().err

    def test_resume_missing_checkpoint_fails_fast(self, tmp_path, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--resume", str(tmp_path / "missing.npz")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_resume_with_mismatched_trigger_fails_fast(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--trigger", "window", "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence", "--trigger", "count",
                     "--resume", str(checkpoint)]) == 2
        err = capsys.readouterr().err
        assert "'window'" in err
        assert "'count'" in err
        assert "--trigger" in err

    def test_resume_with_mismatched_shards_fails_fast(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence", "--shards", "2",
                     "--resume", str(checkpoint)]) == 2
        assert "unsharded run" in capsys.readouterr().err

    def test_resume_with_mismatched_shard_count_fails_fast(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--shards", "4", "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence", "--shards", "2",
                     "--resume", str(checkpoint)]) == 2
        err = capsys.readouterr().err
        assert "shards=4" in err
        assert "shards=2" in err

    def test_resume_with_mismatched_patience_fails_fast(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence",
                     "--patience-hours", "2", "--resume", str(checkpoint)]) == 2
        assert "--patience-hours" in capsys.readouterr().err


class TestStreamObservability:
    """The --trace / --metrics-port surface: files, endpoint, validation."""

    def test_trace_file_written_and_schema_valid(self, tmp_path, capsys):
        from repro.obs import validate_trace_events

        trace = tmp_path / "trace.json"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "3",
                     "--show-rounds", "0", "--trace", str(trace)]) == 0
        assert f"trace: {trace}" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        validate_trace_events(payload)
        names = {event["name"] for event in payload["traceEvents"]}
        assert {"process_name", "round", "round.drain"} <= names

    def test_trace_covers_sharded_pipelined_runs(self, tmp_path, capsys):
        from repro.obs import validate_trace_events

        trace = tmp_path / "pipelined.json"
        assert main(["stream", *FAST, "--no-influence", "--shards", "4",
                     "--executor", "thread", "--pipeline", "--show-rounds", "0",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text())
        validate_trace_events(payload)
        names = {event["name"] for event in payload["traceEvents"]}
        assert {"shard.prepare", "shard.solve", "round.merge"} <= names

    def test_metrics_port_serves_valid_exposition(self, capsys):
        import socket
        import threading
        import time
        import urllib.request

        from repro.obs import validate_exposition

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        url = f"http://127.0.0.1:{port}/metrics"
        scraped: list[str] = []
        done = threading.Event()

        def scrape():
            while not done.is_set():
                try:
                    with urllib.request.urlopen(url, timeout=1) as response:
                        scraped.append(response.read().decode("utf-8"))
                except OSError:
                    pass
                time.sleep(0.01)

        thread = threading.Thread(target=scrape, daemon=True)
        thread.start()
        try:
            assert main(["stream", *FAST, "--no-influence", "--show-rounds",
                         "0", "--metrics-port", str(port)]) == 0
        finally:
            done.set()
            thread.join(timeout=10)
        assert f"metrics: {url}" in capsys.readouterr().out
        assert scraped, "no scrape landed while the endpoint was up"
        validate_exposition(scraped[-1])

    def test_invalid_metrics_port_fails_fast(self, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--metrics-port", "70000"]) == 2
        assert "--metrics-port" in capsys.readouterr().err


class TestStreamMultiDayAndAdmission:
    """The --days and --admission-* surface: runs and flag validation."""

    def test_multi_day_run(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--days", "3",
                     "--day", "5", "--show-rounds", "0"]) == 0
        out = capsys.readouterr().out
        assert "relocations" in out
        assert "rounds:" in out

    def test_admission_defer_run(self, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--admission-budget", "0.5", "--show-rounds", "0"]) == 0
        assert "rounds:" in capsys.readouterr().out

    def test_admission_shed_run(self, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--admission-budget", "0.5",
                     "--admission-policy", "shed", "--show-rounds", "0"]) == 0
        assert "rounds:" in capsys.readouterr().out

    def test_days_must_be_positive(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--days", "0"]) == 2
        assert "--days" in capsys.readouterr().err

    def test_admission_policy_requires_budget(self, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--admission-policy", "shed"]) == 2
        assert "--admission-budget" in capsys.readouterr().err

    def test_admission_budget_must_be_positive(self, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--admission-budget", "0"]) == 2
        assert "--admission-budget" in capsys.readouterr().err

    def test_admission_budget_rejects_negative(self, capsys):
        assert main(["stream", *FAST, "--no-influence",
                     "--admission-budget", "-1"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_resume_with_mismatched_admission_fails_fast(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence",
                     "--admission-budget", "1.0",
                     "--resume", str(checkpoint)]) == 2
        err = capsys.readouterr().err
        assert "admission" in err
        assert "--admission-*" in err

    def test_resume_with_mismatched_admission_policy_fails_fast(
        self, tmp_path, capsys
    ):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--admission-budget", "1.0",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence",
                     "--admission-budget", "1.0",
                     "--admission-policy", "shed",
                     "--resume", str(checkpoint)]) == 2
        assert "policy" in capsys.readouterr().err

    def test_admission_resume_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--admission-budget", "1.0", "--days", "2", "--day", "5",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence",
                     "--admission-budget", "1.0", "--days", "2", "--day", "5",
                     "--resume", str(checkpoint), "--show-rounds", "0"]) == 0
        assert "resumed from" in capsys.readouterr().out


class TestStreamPipelineFlags:
    def test_pipelined_sharded_run(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--shards", "4",
                     "--executor", "thread", "--pipeline"]) == 0
        out = capsys.readouterr().out
        assert "pipelined" in out
        assert "phases (s):" in out

    def test_rebalanced_run(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--shards", "4",
                     "--rebalance", "--rebalance-interval", "2"]) == 0
        out = capsys.readouterr().out
        assert "shard repacks:" in out

    def test_pipeline_requires_shards(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--pipeline"]) == 2
        assert "--pipeline requires --shards" in capsys.readouterr().err

    def test_rebalance_requires_shards(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--rebalance"]) == 2
        assert "--rebalance requires --shards" in capsys.readouterr().err

    def test_rebalance_interval_must_be_positive(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--shards", "2",
                     "--rebalance", "--rebalance-interval", "0"]) == 2
        assert "--rebalance-interval" in capsys.readouterr().err

    def test_rebalance_alpha_range_checked(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--shards", "2",
                     "--rebalance", "--rebalance-alpha", "1.5"]) == 2
        assert "--rebalance-alpha" in capsys.readouterr().err

    def test_rebalance_hysteresis_rejects_negative(self, capsys):
        assert main(["stream", *FAST, "--no-influence", "--shards", "2",
                     "--rebalance", "--rebalance-hysteresis", "-0.5"]) == 2
        assert "--rebalance-hysteresis" in capsys.readouterr().err

    def test_resume_with_mismatched_pipeline_fails_fast(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--shards", "2", "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence", "--shards", "2",
                     "--pipeline", "--resume", str(checkpoint)]) == 2
        assert "pipelin" in capsys.readouterr().err

    def test_resume_with_mismatched_rebalance_fails_fast(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--shards", "2", "--rebalance",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence", "--shards", "2",
                     "--resume", str(checkpoint)]) == 2
        assert "rebalanc" in capsys.readouterr().err

    def test_resume_with_mismatched_rebalance_config_fails_fast(
        self, tmp_path, capsys
    ):
        checkpoint = tmp_path / "stream.npz"
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     "--shards", "2", "--rebalance", "--rebalance-interval", "4",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence", "--shards", "2",
                     "--rebalance", "--rebalance-interval", "8",
                     "--resume", str(checkpoint)]) == 2
        assert "interval" in capsys.readouterr().err

    def test_pipelined_rebalanced_resume_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "stream.npz"
        flags = ["--shards", "2", "--executor", "thread", "--pipeline",
                 "--rebalance", "--rebalance-interval", "2"]
        assert main(["stream", *FAST, "--no-influence", "--max-rounds", "2",
                     *flags, "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["stream", *FAST, "--no-influence", *flags,
                     "--resume", str(checkpoint), "--show-rounds", "0"]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "pipelined" in out
