"""Tests for the Pareto movement model (Eq. 1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.willingness import fit_pareto_shape, pareto_tail_probability
from repro.willingness.pareto import DEGENERATE_SHAPE, MAX_SHAPE


class TestFitParetoShape:
    def test_matches_equation_one(self):
        distances = [1.0, 2.0, 4.0]
        expected = 3 / sum(math.log(d + 1.0) for d in distances)
        assert fit_pareto_shape(distances) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_pareto_shape([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fit_pareto_shape([1.0, -0.5])

    def test_all_zero_jumps_degenerate(self):
        assert fit_pareto_shape([0.0, 0.0]) == DEGENERATE_SHAPE

    def test_clamped_to_max(self):
        # One infinitesimal jump -> enormous raw MLE, must clamp.
        assert fit_pareto_shape([1e-12]) == MAX_SHAPE

    def test_recovers_true_shape_from_samples(self, rng):
        true_shape = 2.5
        # Pareto samples with minimum 1: x = u^(-1/shape); distances = x - 1.
        u = rng.random(20000)
        distances = u ** (-1.0 / true_shape) - 1.0
        assert fit_pareto_shape(distances) == pytest.approx(true_shape, rel=0.05)

    @given(st.lists(st.floats(0.0, 1e4), min_size=1, max_size=50))
    def test_shape_always_positive_and_bounded(self, distances):
        shape = fit_pareto_shape(distances)
        assert 0.0 < shape <= MAX_SHAPE


class TestTailProbability:
    def test_zero_distance_is_one(self):
        assert pareto_tail_probability(0.0, 2.0) == pytest.approx(1.0)

    def test_decreasing_in_distance(self):
        shape = 1.8
        values = [pareto_tail_probability(d, shape) for d in (0.0, 1.0, 5.0, 50.0)]
        assert values == sorted(values, reverse=True)

    def test_matches_formula(self):
        assert pareto_tail_probability(3.0, 2.0) == pytest.approx((4.0) ** -2.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            pareto_tail_probability(-1.0, 2.0)
        with pytest.raises(ValueError):
            pareto_tail_probability(1.0, 0.0)

    @given(st.floats(0.0, 1e6), st.floats(0.01, 50.0))
    def test_always_a_probability(self, distance, shape):
        value = pareto_tail_probability(distance, shape)
        assert 0.0 <= value <= 1.0
