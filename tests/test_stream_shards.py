"""Tests for the sharded round path: layout planning + executor determinism.

The load-bearing property: a sharded :class:`StreamRuntime` — any shard
count, any executor backend — produces **bit-identical** assignments and
metrics to the unsharded runtime (and hence, under window triggers, to the
batched ``OnlineSimulator``), because the radius-aware layout never splits
a feasible (worker, task) pair.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment import IAAssigner, MTAAssigner, NearestNeighborAssigner
from repro.entities import Task, Worker
from repro.exceptions import DataError
from repro.framework import OnlineSimulator, WorkerArrival
from repro.geo import Point
from repro.stream import (
    HybridTrigger,
    ShardExecutor,
    ShardLayout,
    ShardRebalancer,
    StreamRuntime,
    TimeWindowTrigger,
    day_stream,
    log_from_arrivals,
    pack_components,
    synthetic_stream,
)
from repro.stream.events import KIND_ARRIVAL, KIND_PUBLISH

from tests.strategies import stream_worlds, trigger_factories


def clustered_world(clusters=4, seed=41, num_workers=120, num_tasks=140,
                    reachable_km=8.0):
    return synthetic_stream(
        num_workers=num_workers, num_tasks=num_tasks, duration_hours=24.0,
        area_km=20.0, valid_hours=4.0, reachable_km=reachable_km,
        churn_fraction=0.05, cancel_fraction=0.02, clusters=clusters,
        seed=seed,
    )


def sorted_pairs(result):
    return sorted(
        (pair.worker.worker_id, pair.task.task_id)
        for pair in result.assignment.pairs
    )


def round_rows(result):
    """Per-round records minus the wall-clock timing field."""
    return [
        (r.index, r.time, r.online_workers, r.open_tasks, r.drained_events,
         r.assigned, r.expired_tasks, r.churned_workers, r.cancelled_tasks)
        for r in result.rounds
    ]


class TestShardLayoutPlanning:
    def test_separated_clusters_become_shards(self):
        _, log = clustered_world(clusters=4)
        layout = ShardLayout.plan(log, 4)
        assert layout.num_shards == 4
        assert layout.component_count() == 4

    def test_never_splits_a_feasible_pair(self):
        _, log = clustered_world(clusters=5, num_workers=80, num_tasks=80)
        for requested in (2, 3, 5, 9):
            layout = ShardLayout.plan(log, requested)
            workers = [log.worker_at(int(i))
                       for i in np.flatnonzero(log.kinds == KIND_ARRIVAL)]
            tasks = [log.task_at(int(i))
                     for i in np.flatnonzero(log.kinds == KIND_PUBLISH)]
            for worker in workers:
                shard = layout.shard_of(worker.location)
                for task in tasks:
                    if worker.location.distance_to(task.location) <= worker.reachable_km:
                        assert layout.shard_of(task.location) == shard

    def test_dense_single_blob_collapses_to_one_shard(self):
        # Uniform world, radius comparable to the area: everything connects.
        _, log = synthetic_stream(
            num_workers=100, num_tasks=100, area_km=40.0, reachable_km=20.0,
            seed=7,
        )
        layout = ShardLayout.plan(log, 8)
        assert layout.num_shards == 1

    def test_planning_is_deterministic(self):
        _, log = clustered_world()
        assert ShardLayout.plan(log, 4) == ShardLayout.plan(log, 4)

    def test_state_dict_roundtrip(self):
        _, log = clustered_world()
        layout = ShardLayout.plan(log, 4)
        assert ShardLayout.from_state_dict(layout.state_dict()) == layout

    def test_empty_log_plans_one_empty_shard(self):
        from repro.stream import EventLog

        layout = ShardLayout.plan(EventLog([]), 4)
        assert layout.num_shards == 1
        assert layout.cells == {}
        # The hash fallback still answers deterministically.
        point = Point(3.0, 4.0)
        assert layout.shard_of(point) == layout.shard_of(point) == 0

    def test_rejects_bad_parameters(self):
        _, log = clustered_world(num_workers=10, num_tasks=10)
        with pytest.raises(ValueError):
            ShardLayout.plan(log, 0)
        with pytest.raises(ValueError):
            ShardLayout.plan(log, 2, cell_km=0.0)

    def test_unknown_cell_fallback_is_stable(self):
        _, log = clustered_world(num_workers=10, num_tasks=10)
        layout = ShardLayout.plan(log, 3)
        far = Point(1e5, -1e5)
        assert 0 <= layout.shard_of(far) < layout.num_shards
        assert layout.shard_of(far) == layout.shard_of(far)


class TestShardedRoundDeterminism:
    """Sharded == unsharded, bit for bit, across counts and backends."""

    @pytest.mark.parametrize("assigner_cls", [NearestNeighborAssigner, IAAssigner])
    @pytest.mark.parametrize("shards,backend", [
        (1, "serial"), (2, "serial"), (4, "serial"), (9, "serial"),
        (4, "thread"),
    ])
    def test_synthetic_world(self, assigner_cls, shards, backend):
        base, log = clustered_world()
        plain = StreamRuntime(
            assigner_cls(), None, HybridTrigger(48, 1.0), base, log,
            patience_hours=6.0,
        ).run()
        runtime = StreamRuntime(
            assigner_cls(), None, HybridTrigger(48, 1.0), base, log,
            patience_hours=6.0, shards=shards, executor=backend,
        )
        sharded = runtime.run()
        runtime.close()
        assert plain.total_assigned > 0
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)
        # Engines may record waits in different order, so compare the
        # order-independent histogram state (buckets + exact min/max);
        # ``total`` is excluded — float addition order shifts its last ulp.
        for name in ("task_wait_histogram", "worker_wait_histogram"):
            ours, theirs = getattr(sharded.metrics, name), getattr(plain.metrics, name)
            assert ours.count == theirs.count
            assert ours.counts.tolist() == theirs.counts.tolist()
            assert ours.min_seen == theirs.min_seen
            assert ours.max_seen == theirs.max_seen

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_property_random_worlds(self, seed):
        """Property sweep: random worlds, random-ish shard counts."""
        rng = np.random.default_rng(seed)
        clusters = int(rng.integers(2, 6))
        base, log = clustered_world(
            clusters=clusters, seed=seed,
            num_workers=int(rng.integers(40, 90)),
            num_tasks=int(rng.integers(40, 90)),
        )
        shards = int(rng.integers(1, 8))
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
        ).run()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=shards,
        )
        sharded = runtime.run()
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)

    @settings(max_examples=12)
    @given(
        world=stream_worlds(max_workers=50, max_tasks=50, multi_day=True),
        make_trigger=trigger_factories(),
        shards=st.integers(1, 8),
    )
    def test_hypothesis_worlds_and_triggers(self, world, make_trigger, shards):
        """Shared-strategy sweep: any synthetic multi-day world (relocation
        waves included), any trigger policy, any shard count — sharded and
        unsharded rounds stay bit-identical."""
        base, log = world
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, make_trigger(), base, log,
        ).run()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, make_trigger(), base, log,
            shards=shards,
        )
        sharded = runtime.run()
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)

    def test_process_backend(self):
        base, log = clustered_world(num_workers=50, num_tasks=50)
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
        ).run()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
            shards=4, executor="process",
        )
        sharded = runtime.run()
        runtime.close()
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)

    def test_non_incremental_matches_too(self):
        base, log = clustered_world()
        plain = StreamRuntime(
            IAAssigner(), None, TimeWindowTrigger(1.0), base, log,
            incremental=False,
        ).run()
        runtime = StreamRuntime(
            IAAssigner(), None, TimeWindowTrigger(1.0), base, log,
            incremental=False, shards=4, executor="thread",
        )
        sharded = runtime.run()
        runtime.close()
        assert sorted_pairs(sharded) == sorted_pairs(plain)

    def test_matches_online_simulator_on_clustered_world(self):
        """Transitivity made explicit: sharded == unsharded == batched
        OnlineSimulator under equivalent window boundaries."""
        base, log = clustered_world(seed=23)
        arrivals = [
            WorkerArrival(worker=log.worker_at(int(i)), arrival_time=float(log.times[i]))
            for i in np.flatnonzero(log.kinds == KIND_ARRIVAL)
        ]
        tasks = [log.task_at(int(i)) for i in np.flatnonzero(log.kinds == KIND_PUBLISH)]
        online = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0).run(
            base.with_tasks(tasks), arrivals
        )
        runtime = StreamRuntime(
            MTAAssigner(), None, TimeWindowTrigger(1.0), base,
            log_from_arrivals(arrivals, tasks), shards=4,
        )
        sharded = runtime.run()
        online_pairs = sorted(
            (p.worker.worker_id, p.task.task_id) for p in online.assignment.pairs
        )
        assert sorted_pairs(sharded) == online_pairs
        assert [s.assigned for s in online.steps] == [
            r.assigned for r in sharded.rounds
        ]

    def test_fitted_world(self, tiny_dataset, tiny_instance, fitted_models):
        """Sharding a fitted dataset day (influence model live) stays exact,
        even when the world collapses to few components."""
        _, log = day_stream(tiny_dataset, 6)
        plain = StreamRuntime(
            IAAssigner(), fitted_models.influence_model(), TimeWindowTrigger(4.0),
            tiny_instance, log,
        ).run()
        runtime = StreamRuntime(
            IAAssigner(), fitted_models.influence_model(), TimeWindowTrigger(4.0),
            tiny_instance, log, shards=4, shard_cell_km=5.0,
        )
        sharded = runtime.run()
        assert plain.total_assigned > 0
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)


class TestShardExecutor:
    def test_rejects_unknown_backend(self):
        _, log = clustered_world(num_workers=10, num_tasks=10)
        layout = ShardLayout.plan(log, 2)
        with pytest.raises(ValueError):
            ShardExecutor(layout, backend="gpu")
        with pytest.raises(ValueError):
            ShardExecutor(layout, max_workers=0)

    def test_per_shard_round_states_accumulate(self):
        base, log = clustered_world()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
            shards=4,
        )
        runtime.run()
        executor = runtime.shard_executor
        assert set(executor.round_states) <= set(range(executor.layout.num_shards))
        assert len(executor.round_states) > 1  # several shards saw rounds

    def test_shard_rngs_spawn_from_user_generator(self):
        _, log = clustered_world(num_workers=20, num_tasks=20)
        layout = ShardLayout.plan(log, 3)
        seeded_a = ShardExecutor(layout, rng=np.random.default_rng(7))
        seeded_b = ShardExecutor(layout, rng=np.random.default_rng(7))
        other = ShardExecutor(layout, rng=np.random.default_rng(8))
        default = ShardExecutor(layout)
        for shard in range(layout.num_shards):
            assert (
                seeded_a.rng_for(shard).bit_generator.state
                == seeded_b.rng_for(shard).bit_generator.state
            )
            assert (
                seeded_a.rng_for(shard).bit_generator.state
                != other.rng_for(shard).bit_generator.state
            )
            assert (
                seeded_a.rng_for(shard).bit_generator.state
                != default.rng_for(shard).bit_generator.state
            )

    def test_rng_state_dict_roundtrip(self):
        _, log = clustered_world(num_workers=20, num_tasks=20)
        layout = ShardLayout.plan(log, 3)
        executor = ShardExecutor(layout)
        executor.rngs[0].random(5)  # advance one shard's stream
        snapshot = executor.state_dict()
        fresh = ShardExecutor(ShardLayout.from_state_dict(snapshot["layout"]))
        assert (
            fresh.rngs[0].bit_generator.state != executor.rngs[0].bit_generator.state
        )
        fresh.load_state_dict(snapshot)
        for shard in range(layout.num_shards):
            assert (
                fresh.rngs[shard].bit_generator.state
                == executor.rngs[shard].bit_generator.state
            )


class TestPackComponents:
    def test_greedy_least_loaded(self):
        assignment = pack_components({0: 5.0, 1: 3.0, 2: 3.0, 3: 1.0}, 2)
        assert assignment == {0: 0, 1: 1, 2: 1, 3: 0}

    def test_ties_break_by_component_then_bin_index(self):
        assert pack_components({1: 1.0, 0: 1.0, 2: 1.0}, 3) == {0: 0, 1: 1, 2: 2}

    def test_single_bin_takes_everything(self):
        assert pack_components({0: 2.0, 1: 1.0}, 1) == {0: 0, 1: 0}

    def test_matches_planner_packing(self):
        """plan() and pack_components share one greedy: re-packing the
        planner's own component weights reproduces the planner's bins."""
        _, log = clustered_world(clusters=5, num_workers=80, num_tasks=80)
        layout = ShardLayout.plan(log, 3)
        bins = layout.component_bins()
        # Planner weight proxy: entities per component (cells carry counts
        # at plan time; here equal weights per component reproduce the
        # orderless case, so only assert the packing is a valid cover).
        assert set(bins) == set(layout.components.values())
        assert all(0 <= shard < layout.num_shards for shard in bins.values())


def five_cluster_layout(shards=2):
    _, log = clustered_world(clusters=5, num_workers=80, num_tasks=80)
    layout = ShardLayout.plan(log, shards)
    assert len(set(layout.components.values())) >= 3
    return layout


def loaded_rebalancer(ewma, **kwargs):
    """A rebalancer with injected EWMA state (the checkpoint seam)."""
    rebalancer = ShardRebalancer(**kwargs)
    rebalancer.load_state_dict({
        "ewma": [[component, value] for component, value in sorted(ewma.items())],
        "last_repack": -1,
        "observed_rounds": 1,
    })
    return rebalancer


class TestShardRebalancer:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardRebalancer(interval=0)
        with pytest.raises(ValueError):
            ShardRebalancer(alpha=0.0)
        with pytest.raises(ValueError):
            ShardRebalancer(alpha=1.5)
        with pytest.raises(ValueError):
            ShardRebalancer(hysteresis=-0.1)

    def test_observe_seeds_then_smooths(self):
        layout = five_cluster_layout()
        component = min(layout.components.values())
        shard = layout.component_bins()[component]
        rebalancer = ShardRebalancer(alpha=0.5)
        rebalancer.observe(layout, {shard: 2.0}, {component: 10})
        assert rebalancer.ewma[component] == 2.0  # seeded, not decayed
        rebalancer.observe(layout, {shard: 4.0}, {component: 10})
        assert rebalancer.ewma[component] == 3.0  # 2 + 0.5 * (4 - 2)
        assert rebalancer.observed_rounds == 2

    def test_observe_attributes_bin_latency_by_entity_share(self):
        layout = five_cluster_layout()
        bins = layout.component_bins()
        shard = next(iter(bins.values()))
        sharing = [c for c, b in bins.items() if b == shard]
        if len(sharing) < 2:  # pragma: no cover - world-shape guard
            pytest.skip("no co-located components in this layout")
        a, b = sharing[0], sharing[1]
        rebalancer = ShardRebalancer(alpha=1.0)
        rebalancer.observe(layout, {shard: 3.0}, {a: 10, b: 20})
        assert rebalancer.ewma[a] == pytest.approx(1.0)
        assert rebalancer.ewma[b] == pytest.approx(2.0)

    def test_latency_of_overrides_the_sample(self):
        layout = five_cluster_layout()
        component = min(layout.components.values())
        shard = layout.component_bins()[component]
        rebalancer = ShardRebalancer(latency_of=lambda s, n, sec: float(n))
        rebalancer.observe(layout, {shard: 99.0}, {component: 7})
        assert rebalancer.ewma[component] == 7.0

    def _forced_repack_state(self, layout):
        """EWMA weights that demand splitting a co-located heavy pair."""
        bins = layout.component_bins()
        by_bin: dict[int, list[int]] = {}
        for component, shard in bins.items():
            by_bin.setdefault(shard, []).append(component)
        sharing = next(comps for comps in by_bin.values() if len(comps) >= 2)
        heavy_a, heavy_b = sorted(sharing)[:2]
        return {
            component: (10.0 if component == heavy_a
                        else 9.0 if component == heavy_b else 0.1)
            for component in bins
        }, (heavy_a, heavy_b)

    def test_repack_fires_only_at_interval_boundaries(self):
        layout = five_cluster_layout()
        ewma, _ = self._forced_repack_state(layout)
        rebalancer = loaded_rebalancer(ewma, interval=4, hysteresis=0.0)
        assert rebalancer.maybe_repack(0, layout) is None
        assert rebalancer.maybe_repack(3, layout) is None
        assert rebalancer.maybe_repack(4, layout) is not None
        assert rebalancer.last_repack == 4

    def test_repack_splits_the_heavy_pair(self):
        layout = five_cluster_layout()
        ewma, (heavy_a, heavy_b) = self._forced_repack_state(layout)
        rebalancer = loaded_rebalancer(ewma, interval=1, hysteresis=0.0)
        repacked = rebalancer.maybe_repack(1, layout)
        assert repacked is not None
        new_bins = repacked.component_bins()
        assert new_bins[heavy_a] != new_bins[heavy_b]
        # The component partition — the never-split invariant — is intact:
        # every cell keeps its component, components move bins wholesale.
        assert repacked.components == layout.components
        assert set(repacked.cells) == set(layout.cells)
        for key, component in layout.components.items():
            assert repacked.cells[key] == new_bins[component]
        assert repacked.cell_km == layout.cell_km
        assert repacked.num_shards == layout.num_shards

    def test_hysteresis_blocks_near_ties(self):
        layout = five_cluster_layout()
        ewma, _ = self._forced_repack_state(layout)
        eager = loaded_rebalancer(ewma, interval=1, hysteresis=0.0)
        reluctant = loaded_rebalancer(ewma, interval=1, hysteresis=10.0)
        assert eager.maybe_repack(1, layout) is not None
        assert reluctant.maybe_repack(1, layout) is None

    def test_single_shard_and_empty_ewma_never_fire(self):
        layout = five_cluster_layout()
        assert ShardRebalancer(interval=1).maybe_repack(1, layout) is None
        single = five_cluster_layout(shards=1)
        ewma = {component: 1.0 for component in set(single.components.values())}
        rebalancer = loaded_rebalancer(ewma, interval=1, hysteresis=0.0)
        assert rebalancer.maybe_repack(1, single) is None

    def test_repacked_rejects_bad_assignments(self):
        layout = five_cluster_layout()
        with pytest.raises(ValueError):
            layout.repacked({})  # misses every component
        bad = {component: layout.num_shards + 3
               for component in set(layout.components.values())}
        with pytest.raises(ValueError):
            layout.repacked(bad)

    def test_state_dict_roundtrip_through_json(self):
        import json

        layout = five_cluster_layout()
        rebalancer = ShardRebalancer(interval=3, alpha=0.5, hysteresis=0.2)
        component = min(layout.components.values())
        shard = layout.component_bins()[component]
        rebalancer.observe(layout, {shard: 2.5}, {component: 4})
        state = json.loads(json.dumps(rebalancer.state_dict()))
        fresh = ShardRebalancer(interval=3, alpha=0.5, hysteresis=0.2)
        fresh.load_state_dict(state)
        assert fresh.ewma == rebalancer.ewma
        assert fresh.last_repack == rebalancer.last_repack
        assert fresh.observed_rounds == rebalancer.observed_rounds


def entity_count_rebalancer(interval=2):
    """Deterministic signal: latency == live entity count, no wall clock."""
    return ShardRebalancer(
        interval=interval, hysteresis=0.0,
        latency_of=lambda shard, entities, seconds: float(entities),
    )


class TestRebalancedRuntime:
    """Repacking mid-stream never changes output — only the packing."""

    @pytest.mark.parametrize("seed", [3, 29])
    def test_rebalanced_matches_plain(self, seed):
        base, log = clustered_world(clusters=5, seed=seed,
                                    num_workers=80, num_tasks=80)
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
        ).run()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=3, rebalance=entity_count_rebalancer(),
        )
        rebalanced = runtime.run()
        assert sorted_pairs(rebalanced) == sorted_pairs(plain)
        assert round_rows(rebalanced) == round_rows(plain)
        assert rebalanced.metrics.total_repacks == sum(
            r.repacks for r in rebalanced.rounds
        )

    def test_repacks_fire_and_are_recorded(self):
        """At least one boundary must actually repack under an entity-count
        signal on a churned world (live counts drift from plan-time ones)."""
        base, log = clustered_world(clusters=5, num_workers=80, num_tasks=80)
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=3, rebalance=entity_count_rebalancer(interval=1),
        )
        result = runtime.run()
        assert result.metrics.total_repacks > 0
        assert any(r.repacks > 0 for r in result.rounds)

    def test_runs_are_reproducible(self):
        base, log = clustered_world(clusters=5, num_workers=60, num_tasks=60)
        results = [
            StreamRuntime(
                NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, shards=3, rebalance=entity_count_rebalancer(),
            ).run()
            for _ in range(2)
        ]
        assert sorted_pairs(results[0]) == sorted_pairs(results[1])
        assert round_rows(results[0]) == round_rows(results[1])
        assert [r.repacks for r in results[0].rounds] == [
            r.repacks for r in results[1].rounds
        ]

    @settings(max_examples=10, deadline=None)
    @given(
        world=stream_worlds(max_workers=40, max_tasks=40),
        shards=st.integers(2, 6),
        interval=st.integers(1, 3),
    )
    def test_property_repack_is_assignment_equivalent(
        self, world, shards, interval
    ):
        """The ISSUE's property pin: any world, any shard count, any repack
        cadence — a repacking run is bit-identical to a non-repacking one."""
        base, log = world
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=shards,
        ).run()
        rebalanced = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=shards, rebalance=entity_count_rebalancer(interval=interval),
        ).run()
        assert sorted_pairs(rebalanced) == sorted_pairs(plain)
        assert round_rows(rebalanced) == round_rows(plain)

    def test_rebalance_requires_shards(self):
        base, log = clustered_world(num_workers=10, num_tasks=10)
        with pytest.raises(ValueError, match="rebalance requires shards"):
            StreamRuntime(
                NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, log, rebalance=entity_count_rebalancer(),
            )


class TestShardedCheckpoint:
    def _runtime(self, base, log, shards=4, executor="serial"):
        return StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            patience_hours=6.0, shards=shards, executor=executor,
        )

    def test_resume_is_bit_identical(self, tmp_path):
        base, log = clustered_world(seed=47)
        uninterrupted = self._runtime(base, log).run()

        interrupted = self._runtime(base, log)
        interrupted.run(max_rounds=5)
        interrupted.rngs_probe = interrupted.shard_executor.rngs[0].random()
        saved = interrupted.checkpoint(tmp_path / "sharded.npz")
        resumed_runtime = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
            base, log, patience_hours=6.0, shards=4,
        )
        resumed = resumed_runtime.run()
        assert sorted_pairs(resumed) == sorted_pairs(uninterrupted)
        assert round_rows(resumed) == round_rows(uninterrupted)
        # The consumed per-shard RNG stream resumes where it stopped.
        assert (
            resumed_runtime.shard_executor.rngs[0].random()
            == interrupted.shard_executor.rngs[0].random()
        )

    def test_refuses_shardedness_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        sharded = self._runtime(base, log)
        sharded.run(max_rounds=2)
        saved = sharded.checkpoint(tmp_path / "sharded.npz")
        with pytest.raises(DataError, match="sharded"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0,
            )

        plain = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            patience_hours=6.0,
        )
        plain.run(max_rounds=2)
        saved_plain = plain.checkpoint(tmp_path / "plain.npz")
        with pytest.raises(DataError, match="unsharded"):
            StreamRuntime.resume(
                saved_plain, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=4,
            )

    def test_refuses_shard_count_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        sharded = self._runtime(base, log)
        sharded.run(max_rounds=2)
        saved = sharded.checkpoint(tmp_path / "sharded.npz")
        with pytest.raises(DataError, match="shards=4"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=2,
            )
        with pytest.raises(DataError, match="cell_km"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=4, shard_cell_km=2.0,
            )

    def test_refuses_trigger_kind_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        sharded = self._runtime(base, log)
        sharded.run(max_rounds=2)
        saved = sharded.checkpoint(tmp_path / "sharded.npz")
        with pytest.raises(DataError, match="trigger"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, log, patience_hours=6.0, shards=4,
            )

    def _rebalanced_runtime(self, base, log, **kwargs):
        return StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            patience_hours=6.0, shards=3,
            rebalance=entity_count_rebalancer(**kwargs),
        )

    def test_rebalanced_resume_is_bit_identical(self, tmp_path):
        """Resuming adopts the saved (possibly repacked) layout and EWMA
        state, so replay repacks at the same boundaries and stays exact."""
        base, log = clustered_world(clusters=5, num_workers=80, num_tasks=80)
        uninterrupted = self._rebalanced_runtime(base, log, interval=1).run()
        assert uninterrupted.metrics.total_repacks > 0

        interrupted = self._rebalanced_runtime(base, log, interval=1)
        interrupted.run(max_rounds=6)
        saved = interrupted.checkpoint(tmp_path / "rebalanced.npz")
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
            base, log, patience_hours=6.0, shards=3,
            rebalance=entity_count_rebalancer(interval=1),
        ).run()
        assert sorted_pairs(resumed) == sorted_pairs(uninterrupted)
        assert round_rows(resumed) == round_rows(uninterrupted)
        assert resumed.metrics.total_repacks == uninterrupted.metrics.total_repacks

    def test_refuses_rebalance_presence_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        rebalanced = self._rebalanced_runtime(base, log)
        rebalanced.run(max_rounds=2)
        saved = rebalanced.checkpoint(tmp_path / "rebalanced.npz")
        with pytest.raises(DataError, match="rebalanc"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=3,
            )

        plain = self._runtime(base, log, shards=3)
        plain.run(max_rounds=2)
        saved_plain = plain.checkpoint(tmp_path / "plain.npz")
        with pytest.raises(DataError, match="rebalanc"):
            StreamRuntime.resume(
                saved_plain, NearestNeighborAssigner(), None,
                HybridTrigger(32, 1.0), base, log, patience_hours=6.0,
                shards=3, rebalance=entity_count_rebalancer(),
            )

    def test_refuses_rebalance_config_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        rebalanced = self._rebalanced_runtime(base, log, interval=2)
        rebalanced.run(max_rounds=2)
        saved = rebalanced.checkpoint(tmp_path / "rebalanced.npz")
        with pytest.raises(DataError, match="interval"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=3,
                rebalance=entity_count_rebalancer(interval=5),
            )

    def test_refuses_pipeline_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        pipelined = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            patience_hours=6.0, shards=4, executor="thread", pipeline=True,
        )
        pipelined.run(max_rounds=2)
        saved = pipelined.checkpoint(tmp_path / "pipelined.npz")
        pipelined.close()
        with pytest.raises(DataError, match="pipelin"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=4,
            )


class TestSharedMemoryBackend:
    """Fork-once slab lifecycle of the shared-memory process executor."""

    def _process_runtime(self, base, log, **kwargs):
        return StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            patience_hours=6.0, shards=4, executor="process", **kwargs,
        )

    def test_slabs_published_once_and_reused_across_rounds(self):
        base, log = clustered_world(num_workers=60, num_tasks=60, seed=9)
        runtime = self._process_runtime(base, log)
        try:
            executor = runtime.shard_executor
            assert executor.shares_memory
            assert executor._slabs is None  # nothing published before round 1

            runtime.run(max_rounds=4)
            slabs = executor._slabs
            assert slabs is not None
            published = {name for _, name, _, _ in slabs.specs}

            runtime.run()  # rest of the stream: the same blocks serve it
            assert executor._slabs is slabs
            assert {name for _, name, _, _ in executor._slabs.specs} == published
            assert executor._scratch  # per-shard scratch got exercised
        finally:
            runtime.close()

    def test_close_unlinks_slabs_and_scratch(self):
        from multiprocessing import shared_memory

        base, log = clustered_world(num_workers=60, num_tasks=60, seed=9)
        runtime = self._process_runtime(base, log)
        runtime.run()
        executor = runtime.shard_executor
        names = [name for _, name, _, _ in executor._slabs.specs]
        names += [
            scratch._block.name
            for scratch in executor._scratch.values()
            if scratch._block is not None
        ]
        assert names
        runtime.close()
        assert executor._slabs is None
        assert executor._scratch == {}
        for name in names:  # the segments are really gone from the OS
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        runtime.close()  # idempotent after release

    def test_executor_without_log_falls_back_to_pickling(self):
        """Direct construction (no event log) keeps the legacy path."""
        _, log = clustered_world(num_workers=10, num_tasks=10)
        executor = ShardExecutor(ShardLayout.plan(log, 2), backend="process")
        assert not executor.shares_memory
        with_log = ShardExecutor(ShardLayout.plan(log, 2), backend="process",
                                 log=log)
        assert with_log.shares_memory
