"""Tests for the sharded round path: layout planning + executor determinism.

The load-bearing property: a sharded :class:`StreamRuntime` — any shard
count, any executor backend — produces **bit-identical** assignments and
metrics to the unsharded runtime (and hence, under window triggers, to the
batched ``OnlineSimulator``), because the radius-aware layout never splits
a feasible (worker, task) pair.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment import IAAssigner, MTAAssigner, NearestNeighborAssigner
from repro.entities import Task, Worker
from repro.exceptions import DataError
from repro.framework import OnlineSimulator, WorkerArrival
from repro.geo import Point
from repro.stream import (
    HybridTrigger,
    ShardExecutor,
    ShardLayout,
    StreamRuntime,
    TimeWindowTrigger,
    day_stream,
    log_from_arrivals,
    synthetic_stream,
)
from repro.stream.events import KIND_ARRIVAL, KIND_PUBLISH

from tests.strategies import stream_worlds, trigger_factories


def clustered_world(clusters=4, seed=41, num_workers=120, num_tasks=140,
                    reachable_km=8.0):
    return synthetic_stream(
        num_workers=num_workers, num_tasks=num_tasks, duration_hours=24.0,
        area_km=20.0, valid_hours=4.0, reachable_km=reachable_km,
        churn_fraction=0.05, cancel_fraction=0.02, clusters=clusters,
        seed=seed,
    )


def sorted_pairs(result):
    return sorted(
        (pair.worker.worker_id, pair.task.task_id)
        for pair in result.assignment.pairs
    )


def round_rows(result):
    """Per-round records minus the wall-clock timing field."""
    return [
        (r.index, r.time, r.online_workers, r.open_tasks, r.drained_events,
         r.assigned, r.expired_tasks, r.churned_workers, r.cancelled_tasks)
        for r in result.rounds
    ]


class TestShardLayoutPlanning:
    def test_separated_clusters_become_shards(self):
        _, log = clustered_world(clusters=4)
        layout = ShardLayout.plan(log, 4)
        assert layout.num_shards == 4
        assert layout.component_count() == 4

    def test_never_splits_a_feasible_pair(self):
        _, log = clustered_world(clusters=5, num_workers=80, num_tasks=80)
        for requested in (2, 3, 5, 9):
            layout = ShardLayout.plan(log, requested)
            workers = [log.worker_at(int(i))
                       for i in np.flatnonzero(log.kinds == KIND_ARRIVAL)]
            tasks = [log.task_at(int(i))
                     for i in np.flatnonzero(log.kinds == KIND_PUBLISH)]
            for worker in workers:
                shard = layout.shard_of(worker.location)
                for task in tasks:
                    if worker.location.distance_to(task.location) <= worker.reachable_km:
                        assert layout.shard_of(task.location) == shard

    def test_dense_single_blob_collapses_to_one_shard(self):
        # Uniform world, radius comparable to the area: everything connects.
        _, log = synthetic_stream(
            num_workers=100, num_tasks=100, area_km=40.0, reachable_km=20.0,
            seed=7,
        )
        layout = ShardLayout.plan(log, 8)
        assert layout.num_shards == 1

    def test_planning_is_deterministic(self):
        _, log = clustered_world()
        assert ShardLayout.plan(log, 4) == ShardLayout.plan(log, 4)

    def test_state_dict_roundtrip(self):
        _, log = clustered_world()
        layout = ShardLayout.plan(log, 4)
        assert ShardLayout.from_state_dict(layout.state_dict()) == layout

    def test_empty_log_plans_one_empty_shard(self):
        from repro.stream import EventLog

        layout = ShardLayout.plan(EventLog([]), 4)
        assert layout.num_shards == 1
        assert layout.cells == {}
        # The hash fallback still answers deterministically.
        point = Point(3.0, 4.0)
        assert layout.shard_of(point) == layout.shard_of(point) == 0

    def test_rejects_bad_parameters(self):
        _, log = clustered_world(num_workers=10, num_tasks=10)
        with pytest.raises(ValueError):
            ShardLayout.plan(log, 0)
        with pytest.raises(ValueError):
            ShardLayout.plan(log, 2, cell_km=0.0)

    def test_unknown_cell_fallback_is_stable(self):
        _, log = clustered_world(num_workers=10, num_tasks=10)
        layout = ShardLayout.plan(log, 3)
        far = Point(1e5, -1e5)
        assert 0 <= layout.shard_of(far) < layout.num_shards
        assert layout.shard_of(far) == layout.shard_of(far)


class TestShardedRoundDeterminism:
    """Sharded == unsharded, bit for bit, across counts and backends."""

    @pytest.mark.parametrize("assigner_cls", [NearestNeighborAssigner, IAAssigner])
    @pytest.mark.parametrize("shards,backend", [
        (1, "serial"), (2, "serial"), (4, "serial"), (9, "serial"),
        (4, "thread"),
    ])
    def test_synthetic_world(self, assigner_cls, shards, backend):
        base, log = clustered_world()
        plain = StreamRuntime(
            assigner_cls(), None, HybridTrigger(48, 1.0), base, log,
            patience_hours=6.0,
        ).run()
        runtime = StreamRuntime(
            assigner_cls(), None, HybridTrigger(48, 1.0), base, log,
            patience_hours=6.0, shards=shards, executor=backend,
        )
        sharded = runtime.run()
        runtime.close()
        assert plain.total_assigned > 0
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)
        assert sorted(sharded.metrics.task_waits) == sorted(plain.metrics.task_waits)
        assert sorted(sharded.metrics.worker_waits) == sorted(plain.metrics.worker_waits)

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_property_random_worlds(self, seed):
        """Property sweep: random worlds, random-ish shard counts."""
        rng = np.random.default_rng(seed)
        clusters = int(rng.integers(2, 6))
        base, log = clustered_world(
            clusters=clusters, seed=seed,
            num_workers=int(rng.integers(40, 90)),
            num_tasks=int(rng.integers(40, 90)),
        )
        shards = int(rng.integers(1, 8))
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
        ).run()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=shards,
        )
        sharded = runtime.run()
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)

    @settings(max_examples=12)
    @given(
        world=stream_worlds(max_workers=50, max_tasks=50, multi_day=True),
        make_trigger=trigger_factories(),
        shards=st.integers(1, 8),
    )
    def test_hypothesis_worlds_and_triggers(self, world, make_trigger, shards):
        """Shared-strategy sweep: any synthetic multi-day world (relocation
        waves included), any trigger policy, any shard count — sharded and
        unsharded rounds stay bit-identical."""
        base, log = world
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, make_trigger(), base, log,
        ).run()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, make_trigger(), base, log,
            shards=shards,
        )
        sharded = runtime.run()
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)

    def test_process_backend(self):
        base, log = clustered_world(num_workers=50, num_tasks=50)
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
        ).run()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
            shards=4, executor="process",
        )
        sharded = runtime.run()
        runtime.close()
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)

    def test_non_incremental_matches_too(self):
        base, log = clustered_world()
        plain = StreamRuntime(
            IAAssigner(), None, TimeWindowTrigger(1.0), base, log,
            incremental=False,
        ).run()
        runtime = StreamRuntime(
            IAAssigner(), None, TimeWindowTrigger(1.0), base, log,
            incremental=False, shards=4, executor="thread",
        )
        sharded = runtime.run()
        runtime.close()
        assert sorted_pairs(sharded) == sorted_pairs(plain)

    def test_matches_online_simulator_on_clustered_world(self):
        """Transitivity made explicit: sharded == unsharded == batched
        OnlineSimulator under equivalent window boundaries."""
        base, log = clustered_world(seed=23)
        arrivals = [
            WorkerArrival(worker=log.worker_at(int(i)), arrival_time=float(log.times[i]))
            for i in np.flatnonzero(log.kinds == KIND_ARRIVAL)
        ]
        tasks = [log.task_at(int(i)) for i in np.flatnonzero(log.kinds == KIND_PUBLISH)]
        online = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0).run(
            base.with_tasks(tasks), arrivals
        )
        runtime = StreamRuntime(
            MTAAssigner(), None, TimeWindowTrigger(1.0), base,
            log_from_arrivals(arrivals, tasks), shards=4,
        )
        sharded = runtime.run()
        online_pairs = sorted(
            (p.worker.worker_id, p.task.task_id) for p in online.assignment.pairs
        )
        assert sorted_pairs(sharded) == online_pairs
        assert [s.assigned for s in online.steps] == [
            r.assigned for r in sharded.rounds
        ]

    def test_fitted_world(self, tiny_dataset, tiny_instance, fitted_models):
        """Sharding a fitted dataset day (influence model live) stays exact,
        even when the world collapses to few components."""
        _, log = day_stream(tiny_dataset, 6)
        plain = StreamRuntime(
            IAAssigner(), fitted_models.influence_model(), TimeWindowTrigger(4.0),
            tiny_instance, log,
        ).run()
        runtime = StreamRuntime(
            IAAssigner(), fitted_models.influence_model(), TimeWindowTrigger(4.0),
            tiny_instance, log, shards=4, shard_cell_km=5.0,
        )
        sharded = runtime.run()
        assert plain.total_assigned > 0
        assert sorted_pairs(sharded) == sorted_pairs(plain)
        assert round_rows(sharded) == round_rows(plain)


class TestShardExecutor:
    def test_rejects_unknown_backend(self):
        _, log = clustered_world(num_workers=10, num_tasks=10)
        layout = ShardLayout.plan(log, 2)
        with pytest.raises(ValueError):
            ShardExecutor(layout, backend="gpu")
        with pytest.raises(ValueError):
            ShardExecutor(layout, max_workers=0)

    def test_per_shard_round_states_accumulate(self):
        base, log = clustered_world()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
            shards=4,
        )
        runtime.run()
        executor = runtime.shard_executor
        assert set(executor.round_states) <= set(range(executor.layout.num_shards))
        assert len(executor.round_states) > 1  # several shards saw rounds

    def test_shard_rngs_spawn_from_user_generator(self):
        _, log = clustered_world(num_workers=20, num_tasks=20)
        layout = ShardLayout.plan(log, 3)
        seeded_a = ShardExecutor(layout, rng=np.random.default_rng(7))
        seeded_b = ShardExecutor(layout, rng=np.random.default_rng(7))
        other = ShardExecutor(layout, rng=np.random.default_rng(8))
        default = ShardExecutor(layout)
        for shard in range(layout.num_shards):
            assert (
                seeded_a.rng_for(shard).bit_generator.state
                == seeded_b.rng_for(shard).bit_generator.state
            )
            assert (
                seeded_a.rng_for(shard).bit_generator.state
                != other.rng_for(shard).bit_generator.state
            )
            assert (
                seeded_a.rng_for(shard).bit_generator.state
                != default.rng_for(shard).bit_generator.state
            )

    def test_rng_state_dict_roundtrip(self):
        _, log = clustered_world(num_workers=20, num_tasks=20)
        layout = ShardLayout.plan(log, 3)
        executor = ShardExecutor(layout)
        executor.rngs[0].random(5)  # advance one shard's stream
        snapshot = executor.state_dict()
        fresh = ShardExecutor(ShardLayout.from_state_dict(snapshot["layout"]))
        assert (
            fresh.rngs[0].bit_generator.state != executor.rngs[0].bit_generator.state
        )
        fresh.load_state_dict(snapshot)
        for shard in range(layout.num_shards):
            assert (
                fresh.rngs[shard].bit_generator.state
                == executor.rngs[shard].bit_generator.state
            )


class TestShardedCheckpoint:
    def _runtime(self, base, log, shards=4, executor="serial"):
        return StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            patience_hours=6.0, shards=shards, executor=executor,
        )

    def test_resume_is_bit_identical(self, tmp_path):
        base, log = clustered_world(seed=47)
        uninterrupted = self._runtime(base, log).run()

        interrupted = self._runtime(base, log)
        interrupted.run(max_rounds=5)
        interrupted.rngs_probe = interrupted.shard_executor.rngs[0].random()
        saved = interrupted.checkpoint(tmp_path / "sharded.npz")
        resumed_runtime = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
            base, log, patience_hours=6.0, shards=4,
        )
        resumed = resumed_runtime.run()
        assert sorted_pairs(resumed) == sorted_pairs(uninterrupted)
        assert round_rows(resumed) == round_rows(uninterrupted)
        # The consumed per-shard RNG stream resumes where it stopped.
        assert (
            resumed_runtime.shard_executor.rngs[0].random()
            == interrupted.shard_executor.rngs[0].random()
        )

    def test_refuses_shardedness_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        sharded = self._runtime(base, log)
        sharded.run(max_rounds=2)
        saved = sharded.checkpoint(tmp_path / "sharded.npz")
        with pytest.raises(DataError, match="sharded"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0,
            )

        plain = StreamRuntime(
            NearestNeighborAssigner(), None, HybridTrigger(32, 1.0), base, log,
            patience_hours=6.0,
        )
        plain.run(max_rounds=2)
        saved_plain = plain.checkpoint(tmp_path / "plain.npz")
        with pytest.raises(DataError, match="unsharded"):
            StreamRuntime.resume(
                saved_plain, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=4,
            )

    def test_refuses_shard_count_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        sharded = self._runtime(base, log)
        sharded.run(max_rounds=2)
        saved = sharded.checkpoint(tmp_path / "sharded.npz")
        with pytest.raises(DataError, match="shards=4"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=2,
            )
        with pytest.raises(DataError, match="cell_km"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, HybridTrigger(32, 1.0),
                base, log, patience_hours=6.0, shards=4, shard_cell_km=2.0,
            )

    def test_refuses_trigger_kind_mismatch(self, tmp_path):
        base, log = clustered_world(seed=47)
        sharded = self._runtime(base, log)
        sharded.run(max_rounds=2)
        saved = sharded.checkpoint(tmp_path / "sharded.npz")
        with pytest.raises(DataError, match="trigger"):
            StreamRuntime.resume(
                saved, NearestNeighborAssigner(), None, TimeWindowTrigger(1.0),
                base, log, patience_hours=6.0, shards=4,
            )
