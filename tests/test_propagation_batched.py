"""Tests for the flat-CSR propagation engine.

Three pillars:

* the batched frontier sampler agrees statistically with the forward IC
  Monte-Carlo estimator (Lemma 2) — the ground-truth check the ISSUE
  demands for the vectorized rewrite;
* flat-CSR :class:`RRRCollection` queries are **bit-identical** to the
  historical list-based implementation on seeded inputs;
* the batched LT simulators keep the model's structural invariants.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.propagation import (
    RRRCollection,
    SocialGraph,
    estimate_informed_probabilities,
    estimate_spread_lt,
    lt_collection,
    sample_lt_rrr_sets_batched,
    sample_rrr_sets,
    sample_rrr_sets_batched,
    simulate_ic_batched,
    simulate_lt_batched,
)


def flat_to_members(indptr, flat):
    return [flat[indptr[j]: indptr[j + 1]] for j in range(len(indptr) - 1)]


class ListBasedReference:
    """The historical list-of-arrays implementation of every query, kept as
    the oracle for bit-identical results."""

    def __init__(self, num_workers, roots, members):
        self.num_workers = num_workers
        self.roots = roots
        self.members = members

    def cover_counts(self):
        counts = np.zeros(self.num_workers, dtype=np.int64)
        for member in self.members:
            counts[member] += 1
        return counts

    def coverage_fraction(self):
        return self.cover_counts() / len(self.members)

    def sigma_all(self):
        return self.num_workers * self.cover_counts().astype(float) / len(self.members)

    def ppro(self, source, target):
        count = 0
        for root, member in zip(self.roots, self.members):
            if root != target:
                continue
            position = np.searchsorted(member, source)
            if position < len(member) and member[position] == source:
                count += 1
        return self.num_workers * count / len(self.members)

    def weighted_root_cover_batch(self, weights):
        member_flat = np.concatenate(self.members)
        set_ids = np.repeat(
            np.arange(len(self.members), dtype=np.int64),
            [len(m) for m in self.members],
        )
        membership = sparse.csr_matrix(
            (np.ones(len(member_flat)), (member_flat, set_ids)),
            shape=(self.num_workers, len(self.members)),
        )
        scale = self.num_workers / len(self.members)
        return scale * (membership @ weights[self.roots, :])


@pytest.fixture()
def triangle_graph():
    return SocialGraph(range(5), [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])


class TestBatchedSamplerShape:
    def test_flat_csr_layout(self, triangle_graph):
        rng = np.random.default_rng(0)
        roots, indptr, flat = sample_rrr_sets_batched(triangle_graph, 100, rng)
        assert len(roots) == 100
        assert len(indptr) == 101
        assert indptr[0] == 0 and indptr[-1] == len(flat)
        members = flat_to_members(indptr, flat)
        for root, member in zip(roots, members):
            assert root in member.tolist()
            assert np.all(np.diff(member) > 0)  # sorted, unique

    def test_zero_count(self, triangle_graph):
        rng = np.random.default_rng(0)
        roots, indptr, flat = sample_rrr_sets_batched(triangle_graph, 0, rng)
        assert len(roots) == 0 and len(flat) == 0
        np.testing.assert_array_equal(indptr, [0])

    def test_negative_count_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            sample_rrr_sets_batched(triangle_graph, -2, np.random.default_rng(0))

    def test_extend_flat_rejects_inconsistent_indptr(self):
        collection = RRRCollection(num_workers=4)
        with pytest.raises(ValueError, match="indptr"):
            collection.extend_flat(
                np.array([0, 1]), np.array([0, 1]), np.array([0, 1])
            )
        with pytest.raises(ValueError, match="inconsistent indptr"):
            collection.extend_flat(
                np.array([0, 1]), np.array([0, 1, 1]), np.array([0, 1])
            )

    def test_clear_preserves_earlier_member_views(self):
        """Views handed out before clear() must keep their data when the
        collection is refilled (the buffers are reallocated, not rewound)."""
        collection = RRRCollection(num_workers=4)
        collection.extend(
            np.array([0], dtype=np.int64), [np.array([0, 1], dtype=np.int64)]
        )
        before = collection.members[0]
        collection.clear()
        collection.extend(
            np.array([2], dtype=np.int64), [np.array([2, 3], dtype=np.int64)]
        )
        np.testing.assert_array_equal(before, [0, 1])

    def test_version_tracks_clear_and_resample(self):
        collection = RRRCollection(num_workers=4)
        v0 = collection.version
        collection.extend(
            np.array([0], dtype=np.int64), [np.array([0], dtype=np.int64)]
        )
        v1 = collection.version
        collection.clear()
        collection.extend(
            np.array([1], dtype=np.int64), [np.array([1], dtype=np.int64)]
        )
        # Same length as after the first extend, but a different version.
        assert len(collection) == 1
        assert v0 != v1 != collection.version

    def test_wrapper_members_match_flat(self, triangle_graph):
        roots_a, members = sample_rrr_sets(triangle_graph, 50, np.random.default_rng(3))
        roots_b, indptr, flat = sample_rrr_sets_batched(
            triangle_graph, 50, np.random.default_rng(3)
        )
        np.testing.assert_array_equal(roots_a, roots_b)
        for member, reference in zip(members, flat_to_members(indptr, flat)):
            np.testing.assert_array_equal(member, reference)


class TestBitIdenticalQueries:
    """Flat-CSR query results must equal the list-based oracle exactly."""

    @pytest.fixture()
    def seeded_pair(self, triangle_graph):
        rng = np.random.default_rng(11)
        roots, indptr, flat = sample_rrr_sets_batched(triangle_graph, 2000, rng)
        collection = RRRCollection(num_workers=triangle_graph.num_workers)
        collection.extend_flat(roots, indptr, flat)
        reference = ListBasedReference(
            triangle_graph.num_workers, roots, flat_to_members(indptr, flat)
        )
        return collection, reference

    def test_coverage_fraction(self, seeded_pair):
        collection, reference = seeded_pair
        np.testing.assert_array_equal(
            collection.coverage_fraction(), reference.coverage_fraction()
        )

    def test_sigma_all(self, seeded_pair):
        collection, reference = seeded_pair
        np.testing.assert_array_equal(collection.sigma_all(), reference.sigma_all())

    def test_ppro_every_pair(self, seeded_pair):
        collection, reference = seeded_pair
        for source in range(collection.num_workers):
            for target in range(collection.num_workers):
                assert collection.ppro(source, target) == reference.ppro(
                    source, target
                ), (source, target)

    def test_weighted_root_cover_batch(self, seeded_pair):
        collection, reference = seeded_pair
        weights = np.random.default_rng(5).random((collection.num_workers, 4))
        np.testing.assert_array_equal(
            collection.weighted_root_cover_batch(weights),
            reference.weighted_root_cover_batch(weights),
        )

    def test_incremental_extend_matches_bulk(self, triangle_graph):
        """Many small extends == one bulk extend, bit for bit."""
        rng = np.random.default_rng(7)
        roots, indptr, flat = sample_rrr_sets_batched(triangle_graph, 300, rng)
        bulk = RRRCollection(num_workers=triangle_graph.num_workers)
        bulk.extend_flat(roots, indptr, flat)
        pieces = RRRCollection(num_workers=triangle_graph.num_workers)
        members = flat_to_members(indptr, flat)
        for start in range(0, 300, 37):
            stop = min(start + 37, 300)
            pieces.extend(roots[start:stop], members[start:stop])
        np.testing.assert_array_equal(pieces.roots, bulk.roots)
        np.testing.assert_array_equal(pieces.flat_members, bulk.flat_members)
        np.testing.assert_array_equal(pieces.indptr, bulk.indptr)
        np.testing.assert_array_equal(pieces.cover_counts(), bulk.cover_counts())
        weights = np.random.default_rng(9).random((triangle_graph.num_workers, 2))
        np.testing.assert_array_equal(
            pieces.weighted_root_cover_batch(weights),
            bulk.weighted_root_cover_batch(weights),
        )


class TestLemma2Equivalence:
    """Batched RRR sampling vs the forward IC Monte-Carlo estimator."""

    @pytest.mark.parametrize("edges", [
        [(0, 1), (1, 2), (2, 3)],
        [(0, 1), (0, 2), (0, 3)],
        [(0, 1), (1, 2), (2, 0), (2, 3)],
    ])
    def test_batched_rrr_matches_batched_monte_carlo(self, edges):
        graph = SocialGraph(range(4), edges)
        collection = RRRCollection(num_workers=4)
        collection.extend_flat(
            *sample_rrr_sets_batched(graph, 60_000, np.random.default_rng(21))
        )
        for source in range(4):
            mc = estimate_informed_probabilities(graph, source, runs=20_000, seed=22)
            rrr = collection.ppro_matrix_row(source)
            for target in range(4):
                if target != source:
                    assert rrr[target] == pytest.approx(mc[target], abs=0.05)

    def test_batched_ic_cascades_contain_seed(self, triangle_graph):
        rng = np.random.default_rng(1)
        seeds = rng.integers(triangle_graph.num_workers, size=500)
        indptr, flat = simulate_ic_batched(triangle_graph, seeds, rng)
        members = flat_to_members(indptr, flat)
        for seed, member in zip(seeds, members):
            assert seed in member.tolist()
            assert np.all(np.diff(member) > 0)


class TestBatchedLT:
    def test_cascades_contain_seed_and_stay_in_component(self):
        graph = SocialGraph(range(6), [(0, 1), (1, 2), (3, 4), (4, 5)])
        rng = np.random.default_rng(2)
        seeds = rng.integers(6, size=400)
        indptr, flat = simulate_lt_batched(graph, seeds, rng)
        comp_a = {graph.index_of(i) for i in (0, 1, 2)}
        comp_b = {graph.index_of(i) for i in (3, 4, 5)}
        for seed, member in zip(seeds, flat_to_members(indptr, flat)):
            nodes = set(member.tolist())
            assert int(seed) in nodes
            assert nodes <= comp_a or nodes <= comp_b

    def test_walk_sampler_matches_spread(self):
        """LT RIS identity: sigma from walks ~ forward LT Monte-Carlo."""
        graph = SocialGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        collection = lt_collection(graph, 60_000, seed=4)
        for seed_node in range(4):
            mc = estimate_spread_lt(graph, seed_node, runs=20_000, seed=5)
            assert collection.sigma(seed_node) == pytest.approx(mc, rel=0.08)

    def test_walks_are_paths(self, triangle_graph):
        rng = np.random.default_rng(6)
        roots, indptr, flat = sample_lt_rrr_sets_batched(triangle_graph, 300, rng)
        for root, member in zip(roots, flat_to_members(indptr, flat)):
            assert root in member.tolist()
            assert np.all(np.diff(member) > 0)


class TestStampArrayPath:
    """The preallocated process-major stamp bitmap must be an invisible
    optimization: identical output *and* identical RNG consumption to the
    sorted-merge fallback, on every engine built on batched_cascade."""

    def _graph(self, num_nodes=120, seed=9):
        rng = np.random.default_rng(seed)
        edges = {
            tuple(sorted(pair))
            for pair in rng.integers(num_nodes, size=(4 * num_nodes, 2))
            if pair[0] != pair[1]
        }
        return SocialGraph(range(num_nodes), sorted(edges))

    def test_rrr_sampling_bit_identical_to_fallback(self, monkeypatch):
        import repro.propagation.rrr as rrr_module

        graph = self._graph()
        stamp = sample_rrr_sets_batched(graph, 800, np.random.default_rng(3))
        monkeypatch.setattr(rrr_module, "STAMP_ARRAY_LIMIT", 0)
        fallback = sample_rrr_sets_batched(graph, 800, np.random.default_rng(3))
        for stamp_array, fallback_array in zip(stamp, fallback):
            np.testing.assert_array_equal(stamp_array, fallback_array)

    def test_ic_simulation_bit_identical_to_fallback(self, monkeypatch):
        import repro.propagation.rrr as rrr_module

        graph = self._graph(seed=11)
        seeds = np.random.default_rng(1).integers(graph.num_workers, size=600)
        stamp = simulate_ic_batched(graph, seeds, np.random.default_rng(5))
        monkeypatch.setattr(rrr_module, "STAMP_ARRAY_LIMIT", 0)
        fallback = simulate_ic_batched(graph, seeds, np.random.default_rng(5))
        np.testing.assert_array_equal(stamp[0], fallback[0])
        np.testing.assert_array_equal(stamp[1], fallback[1])

    def test_rng_consumption_identical(self, monkeypatch):
        """Both paths must leave the generator in the same state, so that
        surrounding pipelines (e.g. RPO ladders) stay reproducible."""
        import repro.propagation.rrr as rrr_module

        graph = self._graph(seed=21)
        rng_stamp = np.random.default_rng(8)
        sample_rrr_sets_batched(graph, 300, rng_stamp)
        monkeypatch.setattr(rrr_module, "STAMP_ARRAY_LIMIT", 0)
        rng_fallback = np.random.default_rng(8)
        sample_rrr_sets_batched(graph, 300, rng_fallback)
        assert rng_stamp.integers(1 << 30) == rng_fallback.integers(1 << 30)
