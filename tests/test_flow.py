"""Tests for the flow substrate: network, max-flow, min-cost max-flow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FlowError
from repro.flow import Dinic, FlowNetwork, MinCostMaxFlow, edmonds_karp


def classic_network():
    """The CLRS example network with max flow 23."""
    network = FlowNetwork(6)
    edges = [
        (0, 1, 16), (0, 2, 13), (1, 2, 10), (2, 1, 4), (1, 3, 12),
        (3, 2, 9), (2, 4, 14), (4, 3, 7), (3, 5, 20), (4, 5, 4),
    ]
    for u, v, c in edges:
        network.add_edge(u, v, c)
    return network


class TestFlowNetwork:
    def test_needs_two_nodes(self):
        with pytest.raises(FlowError):
            FlowNetwork(1)

    def test_rejects_bad_edges(self):
        network = FlowNetwork(3)
        with pytest.raises(FlowError):
            network.add_edge(0, 0, 1)
        with pytest.raises(FlowError):
            network.add_edge(0, 5, 1)
        with pytest.raises(FlowError):
            network.add_edge(0, 1, -1)

    def test_residual_twin(self):
        network = FlowNetwork(2)
        edge = network.add_edge(0, 1, 5, cost=2.0)
        assert network.edge_cap[edge] == 5
        assert network.edge_cap[edge ^ 1] == 0
        assert network.edge_cost[edge ^ 1] == -2.0

    def test_push_updates_both_directions(self):
        network = FlowNetwork(2)
        edge = network.add_edge(0, 1, 5)
        network.push(edge, 3)
        assert network.residual(edge) == 2
        assert network.flow_on(edge) == 3

    def test_push_over_capacity_rejected(self):
        network = FlowNetwork(2)
        edge = network.add_edge(0, 1, 5)
        with pytest.raises(FlowError):
            network.push(edge, 6)

    def test_flow_on_rejects_residual_id(self):
        network = FlowNetwork(2)
        edge = network.add_edge(0, 1, 5)
        with pytest.raises(FlowError):
            network.flow_on(edge + 1)


class TestMaxFlow:
    def test_edmonds_karp_classic(self):
        assert edmonds_karp(classic_network(), 0, 5) == 23

    def test_dinic_classic(self):
        assert Dinic(classic_network()).max_flow(0, 5) == 23

    def test_source_equals_sink_rejected(self):
        with pytest.raises(FlowError):
            edmonds_karp(classic_network(), 0, 0)
        with pytest.raises(FlowError):
            Dinic(classic_network()).max_flow(1, 1)

    def test_disconnected_gives_zero(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 5)
        network.add_edge(2, 3, 5)
        assert edmonds_karp(network, 0, 3) == 0

    def test_bipartite_unit_matching(self):
        # 2 workers, 2 tasks, full bipartite -> matching 2.
        network = FlowNetwork(6)
        network.add_edge(0, 1, 1)
        network.add_edge(0, 2, 1)
        for w in (1, 2):
            for t in (3, 4):
                network.add_edge(w, t, 1)
        network.add_edge(3, 5, 1)
        network.add_edge(4, 5, 1)
        assert Dinic(network).max_flow(0, 5) == 2

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 7), st.data())
    def test_dinic_agrees_with_edmonds_karp(self, n, data):
        edges = []
        for u in range(n):
            for v in range(n):
                if u != v and data.draw(st.booleans()):
                    edges.append((u, v, data.draw(st.integers(0, 10))))
        net_a = FlowNetwork(n)
        net_b = FlowNetwork(n)
        for u, v, c in edges:
            net_a.add_edge(u, v, c)
            net_b.add_edge(u, v, c)
        assert edmonds_karp(net_a, 0, n - 1) == Dinic(net_b).max_flow(0, n - 1)


class TestThreeLevelUnitPhase:
    """The vectorized figure-4 blocking-flow phase and its fallbacks."""

    def test_parallel_source_arcs_fall_back_to_walk(self):
        # Two parallel source arcs into the same middle node break the
        # one-unit-path-per-node framing; the phase must decline and let
        # the generic walk answer.
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1)
        network.add_edge(0, 1, 1)
        network.add_edge(1, 2, 1)
        network.add_edge(2, 3, 1)
        assert Dinic(network).max_flow(0, 3) == 1

    def test_parallel_sink_arcs_fall_back_to_walk(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1)
        network.add_edge(1, 2, 1)
        network.add_edge(2, 3, 1)
        network.add_edge(2, 3, 1)
        assert Dinic(network).max_flow(0, 3) == 1

    def test_phase_without_source_arcs_pushes_nothing(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1)
        dinic = Dinic(network)
        empty = np.empty(0, dtype=np.int64)
        offsets = np.zeros(network.num_nodes + 1, dtype=np.int64)
        assert dinic._three_level_unit_phase(
            empty, empty, empty, offsets, 0, 3
        ) == 0

    def test_phase_with_only_dead_columns_pushes_nothing(self):
        # The left node's sole arc lands on a right node with no sink arc
        # (a dead end the cursor skips); the open right node has no
        # proposer.  Deferred acceptance must converge to zero matches.
        network = FlowNetwork(5)
        source_arc = network.add_edge(0, 1, 1)
        dead_arc = network.add_edge(1, 2, 1)
        sink_arc = network.add_edge(4, 3, 1)
        dinic = Dinic(network)
        arc_edges = np.array([source_arc, dead_arc, sink_arc], dtype=np.int64)
        arc_tails = np.array([0, 1, 4], dtype=np.int64)
        arc_heads = np.array([1, 2, 3], dtype=np.int64)
        offsets = np.array([0, 1, 2, 2, 2, 3], dtype=np.int64)
        assert dinic._three_level_unit_phase(
            arc_edges, arc_tails, arc_heads, offsets, 0, 3
        ) == 0


class TestMinCostMaxFlow:
    def test_prefers_cheap_path(self):
        # Two parallel unit paths with different costs; flow 2 uses both,
        # flow accounting must price them correctly.
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1, cost=1.0)
        network.add_edge(0, 2, 1, cost=5.0)
        network.add_edge(1, 3, 1, cost=1.0)
        network.add_edge(2, 3, 1, cost=5.0)
        result = MinCostMaxFlow(network).solve(0, 3)
        assert result.max_flow == 2
        assert result.total_cost == pytest.approx(12.0)

    def test_max_flow_takes_priority_over_cost(self):
        # The expensive edge must still be used to achieve max flow.
        network = FlowNetwork(4)
        network.add_edge(0, 1, 2, cost=0.0)
        network.add_edge(1, 2, 1, cost=0.0)
        network.add_edge(1, 3, 1, cost=100.0)
        network.add_edge(2, 3, 1, cost=0.0)
        result = MinCostMaxFlow(network).solve(0, 3)
        assert result.max_flow == 2
        assert result.total_cost == pytest.approx(100.0)

    def test_rerouting_through_residual_edges(self):
        # Classic case where SSP must push flow back along a residual arc.
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1, cost=1.0)
        network.add_edge(0, 2, 1, cost=2.0)
        network.add_edge(1, 2, 1, cost=0.0)
        network.add_edge(1, 3, 1, cost=4.0)
        network.add_edge(2, 3, 2, cost=1.0)
        result = MinCostMaxFlow(network).solve(0, 3)
        assert result.max_flow == 2
        # Cheapest max flow: 0-1-2-3 (2) and 0-2-3 (3) = 5.
        assert result.total_cost == pytest.approx(5.0)

    def test_flow_value_matches_dinic(self):
        net_a = classic_network()
        net_b = classic_network()
        assert MinCostMaxFlow(net_a).solve(0, 5).max_flow == Dinic(net_b).max_flow(0, 5)

    def test_source_equals_sink_rejected(self):
        with pytest.raises(FlowError):
            MinCostMaxFlow(classic_network()).solve(2, 2)


class TestArraySubstrate:
    """The flat-CSR network API added by the array rewrite."""

    def test_add_edges_bulk_matches_scalar(self):
        bulk = FlowNetwork(5)
        ids = bulk.add_edges(
            np.array([0, 1, 2]), np.array([1, 2, 4]),
            np.array([3, 2, 1]), np.array([1.0, 2.0, 3.0]),
        )
        scalar = FlowNetwork(5)
        expected = [
            scalar.add_edge(0, 1, 3, 1.0),
            scalar.add_edge(1, 2, 2, 2.0),
            scalar.add_edge(2, 4, 1, 3.0),
        ]
        assert ids.tolist() == expected
        assert bulk.edge_to.tolist() == scalar.edge_to.tolist()
        assert bulk.edge_cap.tolist() == scalar.edge_cap.tolist()
        assert bulk.edge_cost.tolist() == scalar.edge_cost.tolist()

    def test_add_edges_validation(self):
        network = FlowNetwork(3)
        with pytest.raises(FlowError):
            network.add_edges(np.array([0]), np.array([0]), np.array([1]))
        with pytest.raises(FlowError):
            network.add_edges(np.array([0]), np.array([9]), np.array([1]))
        with pytest.raises(FlowError):
            network.add_edges(np.array([0]), np.array([1]), np.array([-2]))
        with pytest.raises(FlowError):
            network.add_edges(np.array([0, 1]), np.array([1]), np.array([1]))

    def test_csr_insertion_order_per_node(self):
        network = FlowNetwork(4)
        first = network.add_edge(0, 1, 1)
        second = network.add_edge(0, 2, 1)
        third = network.add_edge(0, 3, 1)
        indptr, csr_edges = network.csr()
        assert csr_edges[indptr[0] : indptr[1]].tolist() == [first, second, third]
        # Adding edges invalidates and rebuilds the CSR lazily.
        fourth = network.add_edge(0, 1, 2)
        indptr, csr_edges = network.csr()
        assert csr_edges[indptr[0] : indptr[1]].tolist() == [first, second, third, fourth]

    def test_adjacency_compatibility_view(self):
        network = FlowNetwork(3)
        edge = network.add_edge(0, 1, 1)
        other = network.add_edge(1, 2, 1)
        adjacency = network.adjacency
        assert adjacency[0] == [edge]
        assert adjacency[1] == [edge ^ 1, other]
        assert adjacency[2] == [other ^ 1]

    def test_edge_tail_mirrors_edge_to(self):
        network = FlowNetwork(3)
        edge = network.add_edge(0, 2, 1)
        assert network.edge_tail[edge] == 0
        assert network.edge_to[edge] == 2
        assert network.edge_tail[edge ^ 1] == 2
        assert network.edge_to[edge ^ 1] == 0

    def test_flows_vectorized(self):
        network = FlowNetwork(4)
        ids = network.add_edges(
            np.array([0, 0]), np.array([1, 2]), np.array([2, 2])
        )
        network.push(int(ids[0]), 2)
        assert network.flows(ids).tolist() == [2, 0]
        with pytest.raises(FlowError):
            network.flows(ids + 1)

    def test_push_negative_amount_rejected(self):
        network = FlowNetwork(2)
        edge = network.add_edge(0, 1, 5)
        with pytest.raises(FlowError):
            network.push(edge, -1)

    def test_capacity_doubling_preserves_edges(self):
        network = FlowNetwork(3)
        ids = [network.add_edge(0, 1, i + 1) for i in range(50)]
        assert network.num_edges == 50
        assert [network.residual(e) for e in ids] == list(range(1, 51))

    def test_fractional_capacity_rejected(self):
        network = FlowNetwork(3)
        with pytest.raises(FlowError):
            network.add_edge(0, 1, 1.9)
        with pytest.raises(FlowError):
            network.add_edges(np.array([0]), np.array([2]), np.array([0.5]))
        # Integral floats are accepted and stored exactly.
        edge = network.add_edge(0, 1, 2.0)
        assert network.residual(edge) == 2
