"""Shared fixtures: a tiny synthetic world and fitted models.

Session-scoped where safe (everything here is immutable or treated as
such) so the suite stays fast despite exercising the full pipeline.

Hypothesis profiles: the suite loads the ``ci`` profile by default —
derandomized (fixed seed, so property failures reproduce across runs and
machines) with ``deadline=None`` (shared CI runners are too noisy for
per-example timing limits).  Set ``HYPOTHESIS_PROFILE=dev`` to explore
with fresh random seeds locally.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

from repro import (
    DITAPipeline,
    InstanceBuilder,
    PipelineConfig,
    PreparedInstance,
    SyntheticConfig,
    generate_dataset,
)
from repro.data.instance import SCInstance
from repro.entities import PerformedTask, Task, TaskHistory, Worker
from repro.framework.dita import FittedModels
from repro.geo import Point
from repro.propagation import SocialGraph


TINY_CONFIG = SyntheticConfig(
    name="tiny",
    num_users=60,
    num_venues=40,
    num_days=12,
    area_km=30.0,
    num_clusters=4,
    ba_attachment=2,
    mean_checkins_per_user_day=2.0,
    active_probability=0.7,
    seed=123,
)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 60-user synthetic check-in dataset."""
    return generate_dataset(TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_builder(tiny_dataset):
    """Instance builder with paper-default ϕ/r over the tiny dataset."""
    return InstanceBuilder(tiny_dataset, valid_hours=5.0, reachable_km=25.0)


@pytest.fixture(scope="session")
def tiny_instance(tiny_builder) -> SCInstance:
    """A mid-dataset day instance with history behind it."""
    return tiny_builder.build_day(day=6)


@pytest.fixture(scope="session")
def fast_config() -> PipelineConfig:
    """Cheap pipeline configuration for tests."""
    return PipelineConfig(
        num_topics=6,
        propagation_mode="fixed",
        num_rrr_sets=1500,
        seed=42,
    )


@pytest.fixture(scope="session")
def fitted_models(tiny_instance, fast_config) -> FittedModels:
    """DITA models fitted once for the whole suite."""
    return DITAPipeline(fast_config).fit(tiny_instance)


@pytest.fixture(scope="session")
def full_influence(fitted_models):
    """The full (non-ablated) influence model."""
    return fitted_models.influence_model()


@pytest.fixture()
def prepared(tiny_instance, full_influence) -> PreparedInstance:
    """A fresh PreparedInstance per test (caches are per-instance)."""
    return PreparedInstance(tiny_instance, full_influence)


# ----------------------------------------------------------- tiny hand-built
@pytest.fixture()
def square_workers() -> list[Worker]:
    """Four workers on a 10 km square."""
    return [
        Worker(worker_id=0, location=Point(0.0, 0.0), reachable_km=12.0),
        Worker(worker_id=1, location=Point(10.0, 0.0), reachable_km=12.0),
        Worker(worker_id=2, location=Point(0.0, 10.0), reachable_km=12.0),
        Worker(worker_id=3, location=Point(10.0, 10.0), reachable_km=12.0),
    ]


@pytest.fixture()
def square_tasks() -> list[Task]:
    """Three tasks near the square's corners, generous deadlines."""
    return [
        Task(task_id=0, location=Point(1.0, 1.0), publication_time=0.0, valid_hours=10.0),
        Task(task_id=1, location=Point(9.0, 1.0), publication_time=0.0, valid_hours=10.0),
        Task(task_id=2, location=Point(5.0, 9.0), publication_time=0.0, valid_hours=10.0),
    ]


@pytest.fixture()
def line_graph() -> SocialGraph:
    """A path graph 0 - 1 - 2 - 3."""
    return SocialGraph(range(4), [(0, 1), (1, 2), (2, 3)])


@pytest.fixture()
def history_factory():
    """Factory building a TaskHistory from (x, y, t[, categories]) tuples."""

    def build(worker_id: int, visits):
        performed = []
        for visit in visits:
            x, y, t = visit[0], visit[1], visit[2]
            cats = tuple(visit[3]) if len(visit) > 3 else ("cafe",)
            performed.append(
                PerformedTask(
                    location=Point(x, y),
                    arrival_time=t,
                    completion_time=t,
                    categories=cats,
                    venue_id=None,
                )
            )
        return TaskHistory(worker_id=worker_id, performed=performed)

    return build


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
