"""Tests for repro.assignment.partitioned — per-cell assignment."""

import numpy as np
import pytest

from repro.assignment import (
    IAAssigner,
    MTAAssigner,
    PartitionedAssigner,
    PreparedInstance,
)
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.geo import Point


def instance_of(workers, tasks):
    return SCInstance(
        name="partition-test",
        current_time=0.0,
        tasks=tasks,
        workers=workers,
        histories={},
        social_edges=[],
        all_worker_ids=tuple(w.worker_id for w in workers),
    )


def world(num, spread, seed=0, radius=10.0):
    rng = np.random.default_rng(seed)
    workers = [
        Worker(worker_id=i, location=Point(*rng.uniform(0, spread, 2)),
               reachable_km=radius)
        for i in range(num)
    ]
    tasks = [
        Task(task_id=i, location=Point(*rng.uniform(0, spread, 2)),
             publication_time=0.0, valid_hours=8.0)
        for i in range(num)
    ]
    return workers, tasks


class TestPartitionedAssigner:
    def test_rejects_bad_cell(self):
        with pytest.raises(ValueError):
            PartitionedAssigner(MTAAssigner(), cell_km=0.0)

    def test_name_includes_cell_size(self):
        assigner = PartitionedAssigner(MTAAssigner(), cell_km=25.0)
        assert assigner.name == "MTA@25km"

    def test_empty_instance(self):
        prepared = PreparedInstance(instance_of([], []))
        assignment = PartitionedAssigner(MTAAssigner(), cell_km=10.0).assign(prepared)
        assert len(assignment) == 0

    def test_single_cell_equals_global(self):
        """With one cell covering everything the wrapper is the base."""
        workers, tasks = world(20, spread=30.0, seed=1)
        prepared = PreparedInstance(instance_of(workers, tasks))
        global_assignment = MTAAssigner().assign(prepared)
        partitioned = PartitionedAssigner(MTAAssigner(), cell_km=1000.0).assign(
            PreparedInstance(instance_of(workers, tasks))
        )
        assert len(partitioned) == len(global_assignment)

    def test_invariants_hold_across_cells(self):
        workers, tasks = world(60, spread=80.0, seed=2)
        prepared = PreparedInstance(instance_of(workers, tasks))
        assignment = PartitionedAssigner(MTAAssigner(), cell_km=20.0).assign(prepared)
        worker_ids = [p.worker.worker_id for p in assignment]
        task_ids = [p.task.task_id for p in assignment]
        assert len(set(worker_ids)) == len(worker_ids)
        assert len(set(task_ids)) == len(task_ids)

    def test_all_pairs_feasible(self):
        workers, tasks = world(40, spread=60.0, seed=3, radius=15.0)
        prepared = PreparedInstance(instance_of(workers, tasks))
        assignment = PartitionedAssigner(MTAAssigner(), cell_km=15.0).assign(prepared)
        for pair in assignment:
            assert pair.travel_km <= pair.worker.reachable_km + 1e-9
            arrival = pair.worker.travel_hours_to(pair.task.location)
            assert arrival <= pair.task.expiry_time + 1e-9

    def test_partitioning_loses_at_most_border_pairs(self):
        """Per-cell cardinality is bounded by the global optimum and, with
        cells larger than the radius, shouldn't collapse."""
        workers, tasks = world(80, spread=100.0, seed=4, radius=10.0)
        global_count = len(
            MTAAssigner().assign(PreparedInstance(instance_of(workers, tasks)))
        )
        partitioned_count = len(
            PartitionedAssigner(MTAAssigner(), cell_km=25.0).assign(
                PreparedInstance(instance_of(workers, tasks))
            )
        )
        assert partitioned_count <= global_count
        assert partitioned_count >= global_count * 0.5

    def test_works_with_influence_aware_base(self, tiny_instance, full_influence):
        prepared = PreparedInstance(tiny_instance, full_influence)
        global_ia = IAAssigner().assign(prepared)
        partitioned = PartitionedAssigner(IAAssigner(), cell_km=15.0).assign(
            PreparedInstance(tiny_instance, full_influence)
        )
        assert 0 < len(partitioned) <= len(global_ia)
