"""Warm-started round solves in the streaming runtime.

``StreamRuntime(warm=True)`` carries :class:`~repro.flow.WarmStart` duals
and surviving matches between rounds for the lexicographic assigner
family.  The contract under test:

* warm runs are **bit-identical** to cold runs — pairs and per-round
  records — across serial/thread/process backends and pipelining (pinned
  here with a tie-free distance-cost assigner whose optimum is unique);
* carried state is invalidated whenever shard membership can shift under
  an entity: relocation waves, layout repacks, and checkpoint resumes
  (warm state is never persisted — the v6 format is untouched);
* non-lexicographic assigners ignore the flag entirely;
* the warm path feeds the solver-effort telemetry
  (``repro_stream_solve_augmentations``, ``repro_stream_warm_hit``)
  without perturbing results.
"""

import pytest

from repro.assignment import NearestNeighborAssigner
from repro.flow import WarmStart
from repro.geo import Point
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.stream import (
    EventLog,
    HybridTrigger,
    StreamRuntime,
    TaskPublishEvent,
    TimeWindowTrigger,
    WorkerArrivalEvent,
    WorkerRelocateEvent,
    synthetic_stream,
)
from tests.scenarios.generators import DistanceLexAssigner
from tests.test_stream_runtime import (
    make_arrival,
    make_instance,
    make_task,
    pairs,
    round_rows,
)


def clustered(num_workers=60, num_tasks=70, seed=41):
    return synthetic_stream(
        num_workers=num_workers, num_tasks=num_tasks, duration_hours=24.0,
        area_km=20.0, valid_hours=4.0, reachable_km=8.0,
        churn_fraction=0.05, cancel_fraction=0.02, clusters=4, seed=seed,
    )


def run(runtime):
    try:
        return runtime.run()
    finally:
        runtime.close()


class RecordingLexAssigner(DistanceLexAssigner):
    """A spy capturing the ``warm`` argument of every warm solve."""

    def __init__(self) -> None:
        super().__init__()
        self.received: list = []

    def assign_warm(self, prepared, warm):
        self.received.append(warm)
        return super().assign_warm(prepared, warm)


class TestWarmBitIdentity:
    def test_unsharded_warm_matches_cold(self):
        base, log = clustered()
        cold = run(StreamRuntime(
            DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log,
        ))
        warm = run(StreamRuntime(
            DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log,
            warm=True,
        ))
        assert cold.total_assigned > 0
        assert pairs(warm) == pairs(cold)
        assert round_rows(warm) == round_rows(cold)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_sharded_warm_matches_cold(self, backend, pipeline):
        base, log = clustered()
        cold = run(StreamRuntime(
            DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log,
        ))
        warm = run(StreamRuntime(
            DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log,
            shards=4, executor=backend, pipeline=pipeline, warm=True,
        ))
        assert pairs(warm) == pairs(cold)
        assert round_rows(warm) == round_rows(cold)

    def test_warm_flag_is_inert_for_non_lexicographic_assigners(self):
        base, log = clustered(num_workers=30, num_tasks=30)
        cold = run(StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        ))
        warm = run(StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
            warm=True,
        ))
        assert pairs(warm) == pairs(cold)
        assert round_rows(warm) == round_rows(cold)


def relocation_world(relocate: bool):
    """Two assigning rounds; optionally a relocation drained by round two."""
    tasks = (
        [make_task(i, float(i), published=0.2, phi=8.0) for i in range(3)]
        + [make_task(10 + i, float(i), published=1.7, phi=8.0)
           for i in range(3)]
    )
    events = [
        WorkerArrivalEvent(time=0.1, worker=make_arrival(i, 0.5 * i, 0.0, at=0.1).worker)
        for i in range(5)
    ] + [TaskPublishEvent(time=t.publication_time, task=t) for t in tasks]
    if relocate:
        # Worker 3 stays pooled after round one (rounds match three of the
        # five workers), so its relocation genuinely counts as a wave — a
        # relocate of an already-assigned worker would be a no-op.
        events.append(
            WorkerRelocateEvent(time=1.5, worker_id=3, location=Point(3.0, 0.0))
        )
    return make_instance(tasks), EventLog(events)


class TestWarmInvalidation:
    @pytest.mark.parametrize("relocate", [False, True])
    def test_relocation_wave_drops_the_carry(self, relocate):
        base, log = relocation_world(relocate)
        spy = RecordingLexAssigner()
        result = run(StreamRuntime(
            spy, None, TimeWindowTrigger(1.0), base, log, end_time=3.0,
            warm=True,
        ))
        assert result.total_assigned > 0
        assert len(spy.received) >= 2
        assert spy.received[0] is None  # first round is always cold
        if relocate:
            # The wave drained right before round two's solve: carry dropped.
            assert spy.received[1] is None
        else:
            assert isinstance(spy.received[1], WarmStart)

    def test_repack_clears_shard_carries(self):
        from repro.stream import ShardLayout
        from repro.stream.runtime import ShardExecutor

        _, log = clustered(num_workers=10, num_tasks=10)
        layout = ShardLayout.plan(log, 2)

        class AlwaysRepack:
            def maybe_repack(self, round_index, current):
                return current.repacked(current.component_bins())

        executor = ShardExecutor(
            layout, rebalancer=AlwaysRepack(), warm=True
        )
        executor.warm_states[0] = WarmStart()
        executor.warm_states[1] = WarmStart()
        assert executor.maybe_repack(round_index=1) == 1
        assert executor.warm_states == {}
        executor.close()

    def test_invalidate_warm_is_idempotent(self):
        from repro.stream import ShardLayout
        from repro.stream.runtime import ShardExecutor

        _, log = clustered(num_workers=10, num_tasks=10)
        executor = ShardExecutor(ShardLayout.plan(log, 2), warm=True)
        executor.warm_states[0] = WarmStart()
        executor.invalidate_warm()
        executor.invalidate_warm()
        assert executor.warm_states == {}
        executor.close()


class TestWarmCheckpointResume:
    def test_resume_rebuilds_cold_and_stays_bit_identical(self, tmp_path):
        base, log = clustered()
        args = (DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log)
        cold = run(StreamRuntime(*args))
        uninterrupted = run(StreamRuntime(*args, warm=True))

        first = StreamRuntime(*args, warm=True)
        first.run(max_rounds=3)
        assert not first.done
        saved = first.checkpoint(tmp_path / "warm.npz")
        first.close()
        resumed = StreamRuntime.resume(saved, *args, warm=True)
        # Warm state is never persisted: the resumed runtime starts cold.
        assert resumed._warm_state is None
        result = run(resumed)

        assert pairs(result) == pairs(uninterrupted)
        assert round_rows(result) == round_rows(uninterrupted)
        assert pairs(result) == pairs(cold)

    def test_sharded_resume_starts_with_no_shard_carries(self, tmp_path):
        base, log = clustered()
        args = (DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log)
        first = StreamRuntime(*args, shards=4, warm=True)
        first.run(max_rounds=3)
        assert first.shard_executor.warm_states  # genuinely warmed up
        saved = first.checkpoint(tmp_path / "warm-sharded.npz")
        first.close()
        resumed = StreamRuntime.resume(saved, *args, shards=4, warm=True)
        assert resumed.shard_executor.warm_states == {}
        result = run(resumed)
        reference = run(StreamRuntime(*args))
        assert pairs(result) == pairs(reference)
        assert round_rows(result) == round_rows(reference)


class TestWarmObservability:
    def test_solver_effort_instruments_recorded(self):
        base, log = clustered()
        obs = Observability(registry=MetricsRegistry(), tracer=Tracer())
        plain = run(StreamRuntime(
            DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log,
            warm=True,
        ))
        observed = run(StreamRuntime(
            DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log,
            warm=True, obs=obs,
        ))
        assert pairs(observed) == pairs(plain)
        assert round_rows(observed) == round_rows(plain)
        names = {family.name for family in obs.registry.families()}
        assert "repro_stream_solve_augmentations" in names
        assert "repro_stream_warm_hit" in names
        solves = [
            event for event in obs.tracer.events()
            if event["name"] == "round.solve" and "args" in event
        ]
        assert any("augmentations" in event["args"] for event in solves)

    def test_cold_runs_never_record_warm_instruments(self):
        base, log = clustered(num_workers=20, num_tasks=20)
        obs = Observability(registry=MetricsRegistry(), tracer=Tracer())
        run(StreamRuntime(
            DistanceLexAssigner(), None, TimeWindowTrigger(1.0), base, log,
            obs=obs,
        ))
        by_name = {family.name: family for family in obs.registry.families()}
        # Registered (the exposition is stable) but untouched on cold runs.
        for name in ("repro_stream_solve_augmentations", "repro_stream_warm_hit"):
            family = by_name[name]
            assert all(child.value == 0.0 for _, child in family.children())

    def test_warm_run_records_nonzero_solver_effort(self):
        base, log = clustered()
        obs = Observability(registry=MetricsRegistry(), tracer=Tracer())
        run(StreamRuntime(
            DistanceLexAssigner(), None, HybridTrigger(32, 1.0), base, log,
            warm=True, obs=obs,
        ))
        by_name = {family.name: family for family in obs.registry.families()}
        augment = by_name["repro_stream_solve_augmentations"]
        assert any(child.value > 0.0 for _, child in augment.children())
        warm_hit = by_name["repro_stream_warm_hit"]
        assert all(
            0.0 <= child.value <= 1.0 for _, child in warm_hit.children()
        )
