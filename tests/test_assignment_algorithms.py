"""Tests for the six assignment algorithms (MTA, IA, EIA, DIA, MI, NN)."""

import numpy as np
import pytest

from repro.assignment import (
    DIAAssigner,
    EIAAssigner,
    IAAssigner,
    MIAssigner,
    MTAAssigner,
    NearestNeighborAssigner,
    PreparedInstance,
)
from repro.framework.metrics import evaluate_assignment

ALL_ASSIGNERS = [
    MTAAssigner(),
    IAAssigner(),
    EIAAssigner(),
    DIAAssigner(),
    MIAssigner(),
    NearestNeighborAssigner(),
]


class TestCommonProperties:
    @pytest.mark.parametrize("assigner", ALL_ASSIGNERS, ids=lambda a: a.name)
    def test_assignment_valid(self, assigner, prepared):
        assignment = assigner.assign(prepared)
        workers = [p.worker.worker_id for p in assignment]
        tasks = [p.task.task_id for p in assignment]
        assert len(workers) == len(set(workers))
        assert len(tasks) == len(set(tasks))
        # Every pair must satisfy both spatio-temporal constraints.
        for pair in assignment:
            distance = pair.worker.location.distance_to(pair.task.location)
            assert distance <= pair.worker.reachable_km + 1e-9
            arrival = prepared.instance.current_time + distance / pair.worker.speed_kmh
            assert arrival <= pair.task.expiry_time + 1e-9

    @pytest.mark.parametrize("assigner", ALL_ASSIGNERS, ids=lambda a: a.name)
    def test_empty_instance(self, assigner, tiny_instance, full_influence):
        empty = tiny_instance.with_tasks([])
        prepared = PreparedInstance(empty, full_influence)
        assert len(assigner.assign(prepared)) == 0

    @pytest.mark.parametrize("assigner", ALL_ASSIGNERS, ids=lambda a: a.name)
    def test_deterministic(self, assigner, tiny_instance, full_influence):
        a = assigner.assign(PreparedInstance(tiny_instance, full_influence))
        b = assigner.assign(PreparedInstance(tiny_instance, full_influence))
        pairs_a = sorted((p.worker.worker_id, p.task.task_id) for p in a)
        pairs_b = sorted((p.worker.worker_id, p.task.task_id) for p in b)
        assert pairs_a == pairs_b


class TestCardinalityRelations:
    def test_mcmf_algorithms_match_mta_cardinality(self, prepared):
        """IA/EIA/DIA keep max-flow as the primary objective, so their
        cardinality equals MTA's maximum."""
        mta = len(MTAAssigner().assign(prepared))
        for assigner in (IAAssigner(), EIAAssigner(), DIAAssigner()):
            assert len(assigner.assign(prepared)) == mta

    def test_mi_and_nn_cannot_beat_maximum(self, prepared):
        mta = len(MTAAssigner().assign(prepared))
        assert len(MIAssigner().assign(prepared)) <= mta
        assert len(NearestNeighborAssigner().assign(prepared)) <= mta

    def test_mta_engines_agree(self, prepared):
        flow = MTAAssigner(engine="flow").assign(prepared)
        matching = MTAAssigner(engine="matching").assign(prepared)
        assert len(flow) == len(matching)


class TestObjectiveRelations:
    def test_ia_beats_mta_on_influence(self, prepared, full_influence):
        ia = evaluate_assignment("IA", IAAssigner().assign(prepared), prepared)
        mta = evaluate_assignment("MTA", MTAAssigner().assign(prepared), prepared)
        assert ia.average_influence >= mta.average_influence - 1e-12

    def test_mi_has_best_average_influence(self, prepared):
        mi = evaluate_assignment("MI", MIAssigner().assign(prepared), prepared)
        for assigner in (MTAAssigner(), IAAssigner(), EIAAssigner(), DIAAssigner()):
            other = evaluate_assignment(
                assigner.name, assigner.assign(prepared), prepared
            )
            # MI ignores coverage and keeps only locally best pairs, so its
            # AI dominates the coverage-constrained algorithms (greedy is
            # not provably optimal, hence the small empirical tolerance).
            assert mi.average_influence >= other.average_influence * 0.95

    def test_mi_assigns_no_more_than_mcmf(self, prepared):
        mi = len(MIAssigner().assign(prepared))
        ia = len(IAAssigner().assign(prepared))
        assert mi <= ia

    def test_mi_pairs_are_each_workers_best_task(self, prepared):
        import numpy as np

        assignment = MIAssigner().assign(prepared)
        feasible = prepared.feasible
        influence = np.where(feasible.mask, prepared.influence_matrix, -np.inf)
        workers = {w.worker_id: i for i, w in enumerate(feasible.workers)}
        tasks = {t.task_id: j for j, t in enumerate(feasible.tasks)}
        for pair in assignment:
            row = workers[pair.worker.worker_id]
            column = tasks[pair.task.task_id]
            assert influence[row, column] == pytest.approx(float(influence[row].max()))

    def test_dia_minimizes_travel_among_influence_aware(self, prepared):
        dia = evaluate_assignment("DIA", DIAAssigner().assign(prepared), prepared)
        ia = evaluate_assignment("IA", IAAssigner().assign(prepared), prepared)
        eia = evaluate_assignment("EIA", EIAAssigner().assign(prepared), prepared)
        assert dia.average_travel_km <= ia.average_travel_km + 1e-9
        assert dia.average_travel_km <= eia.average_travel_km + 1e-9

    def test_ia_minimizes_its_cost_objective(self, prepared):
        """IA's solution must have minimal total 1/(if+1) among the max
        matchings; EIA's solution over the same cost can only be >=."""
        ia = IAAssigner()
        costs = ia.edge_costs(prepared)
        workers = {w.worker_id: i for i, w in enumerate(prepared.feasible.workers)}
        tasks = {t.task_id: j for j, t in enumerate(prepared.feasible.tasks)}

        def total_cost(assignment):
            return sum(
                costs[workers[p.worker.worker_id], tasks[p.task.task_id]]
                for p in assignment
            )

        ia_cost = total_cost(ia.assign(prepared))
        eia_cost = total_cost(EIAAssigner().assign(prepared))
        assert ia_cost <= eia_cost + 1e-9


class TestEngineConsistency:
    @pytest.mark.parametrize("assigner_cls", [IAAssigner, EIAAssigner, DIAAssigner])
    def test_dense_and_mcmf_equivalent(self, assigner_cls, tiny_instance, full_influence):
        small = tiny_instance.with_tasks(tiny_instance.tasks[:8]).with_workers(
            tiny_instance.workers[:8]
        )
        prepared_dense = PreparedInstance(small, full_influence)
        prepared_mcmf = PreparedInstance(small, full_influence)
        dense = assigner_cls(engine="dense").assign(prepared_dense)
        mcmf = assigner_cls(engine="mcmf").assign(prepared_mcmf)
        assert len(dense) == len(mcmf)
        costs = assigner_cls().edge_costs(prepared_dense)
        workers = {w.worker_id: i for i, w in enumerate(prepared_dense.feasible.workers)}
        tasks = {t.task_id: j for j, t in enumerate(prepared_dense.feasible.tasks)}
        cost_dense = sum(
            costs[workers[p.worker.worker_id], tasks[p.task.task_id]] for p in dense
        )
        cost_mcmf = sum(
            costs[workers[p.worker.worker_id], tasks[p.task.task_id]] for p in mcmf
        )
        assert cost_dense == pytest.approx(cost_mcmf, abs=1e-6)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            MTAAssigner(engine="warp")


class TestCostMatrices:
    def test_ia_cost_formula(self, prepared):
        costs = IAAssigner().edge_costs(prepared)
        expected = 1.0 / (prepared.influence_matrix + 1.0)
        np.testing.assert_allclose(costs, expected)
        assert ((costs > 0) & (costs <= 1.0)).all()

    def test_eia_cost_formula(self, prepared):
        costs = EIAAssigner().edge_costs(prepared)
        entropy = prepared.entropy_vector()[None, :]
        expected = (entropy + 1.0) / (prepared.influence_matrix + 1.0)
        np.testing.assert_allclose(costs, expected)

    def test_dia_cost_formula(self, prepared):
        costs = DIAAssigner().edge_costs(prepared)
        feasible = prepared.feasible
        radius = np.array([w.reachable_km for w in feasible.workers])[:, None]
        discount = 1.0 - np.minimum(1.0, feasible.distance_km / radius)
        expected = 1.0 / (discount * prepared.influence_matrix + 1.0)
        np.testing.assert_allclose(costs, expected)

    def test_dia_discount_zero_at_radius_edge(self, prepared):
        """A task exactly at the reachable radius gets F = 0 -> cost 1."""
        costs = DIAAssigner().edge_costs(prepared)
        feasible = prepared.feasible
        radius = np.array([w.reachable_km for w in feasible.workers])[:, None]
        at_edge = np.isclose(feasible.distance_km, radius)
        if at_edge.any():
            np.testing.assert_allclose(costs[at_edge], 1.0)


class TestNearestNeighbor:
    def test_assigns_nearest_free_worker(self, square_workers, square_tasks):
        from repro.assignment import compute_feasible
        from repro.data.instance import SCInstance

        instance = SCInstance(
            name="manual", current_time=0.0, tasks=square_tasks,
            workers=square_workers, histories={}, social_edges=[],
            all_worker_ids=tuple(w.worker_id for w in square_workers),
        )
        prepared = PreparedInstance(instance, influence=None)
        assignment = NearestNeighborAssigner().assign(prepared)
        by_task = {p.task.task_id: p.worker.worker_id for p in assignment}
        # Task 0 at (1,1): nearest is worker 0 at (0,0).
        assert by_task[0] == 0
        # Task 1 at (9,1): nearest is worker 1 at (10,0).
        assert by_task[1] == 1
