"""Tests for the LDA-based worker-task affinity model."""

import numpy as np
import pytest

from repro.affinity import AffinityModel
from repro.entities import Task
from repro.exceptions import NotFittedError
from repro.geo import Point
from repro.text import VariationalLDA


def make_task(categories, task_id=0):
    return Task(
        task_id=task_id, location=Point(0, 0), publication_time=0.0,
        valid_hours=5.0, categories=tuple(categories),
    )


@pytest.fixture()
def topical_histories(history_factory):
    """Two sharply topical workers: a food lover and a nightlife lover."""
    food = history_factory(0, [(0, 0, t, ("restaurant", "cafe")) for t in range(10)])
    night = history_factory(1, [(0, 0, t, ("bar", "nightclub")) for t in range(10)])
    empty = history_factory(2, [])
    return {0: food, 1: night, 2: empty}


class TestAffinityModel:
    def test_requires_fit(self):
        model = AffinityModel(num_topics=2)
        with pytest.raises(NotFittedError):
            model.worker_topics(0)

    def test_all_empty_histories_raise(self, history_factory):
        model = AffinityModel(num_topics=2)
        with pytest.raises(NotFittedError):
            model.fit({0: history_factory(0, []), 1: history_factory(1, [])})

    def test_prefers_matching_categories(self, topical_histories):
        model = AffinityModel(num_topics=2, seed=3).fit(topical_histories)
        food_task = make_task(["restaurant", "cafe"])
        night_task = make_task(["bar", "nightclub"])
        assert model.affinity(0, food_task) > model.affinity(0, night_task)
        assert model.affinity(1, night_task) > model.affinity(1, food_task)

    def test_affinity_in_unit_interval(self, topical_histories):
        model = AffinityModel(num_topics=2, seed=3).fit(topical_histories)
        task = make_task(["restaurant"])
        for worker_id in (0, 1, 2):
            value = model.affinity(worker_id, task)
            assert 0.0 <= value <= 1.0

    def test_unknown_worker_gets_uniform_topics(self, topical_histories):
        model = AffinityModel(num_topics=2, seed=3).fit(topical_histories)
        theta = model.worker_topics(999)
        np.testing.assert_allclose(theta, 0.5)

    def test_empty_history_worker_gets_prior(self, topical_histories):
        model = AffinityModel(num_topics=2, seed=3).fit(topical_histories)
        theta = model.worker_topics(2)
        # An empty document should stay close to the uniform prior.
        assert abs(theta[0] - theta[1]) < 0.35

    def test_affinity_matrix_matches_pairwise(self, topical_histories):
        model = AffinityModel(num_topics=2, seed=3).fit(topical_histories)
        tasks = [make_task(["restaurant"], 0), make_task(["bar"], 1)]
        matrix = model.affinity_matrix([0, 1, 2], tasks)
        assert matrix.shape == (3, 2)
        for i, worker_id in enumerate((0, 1, 2)):
            for j, task in enumerate(tasks):
                assert matrix[i, j] == pytest.approx(model.affinity(worker_id, task))

    def test_affinity_matrix_empty_inputs(self, topical_histories):
        model = AffinityModel(num_topics=2, seed=3).fit(topical_histories)
        assert model.affinity_matrix([], []).shape == (0, 0)

    def test_task_topic_cache_by_categories(self, topical_histories):
        model = AffinityModel(num_topics=2, seed=3).fit(topical_histories)
        t1 = make_task(["restaurant", "cafe"], 0)
        t2 = make_task(["restaurant", "cafe"], 99)  # same categories, new id
        np.testing.assert_array_equal(
            model.task_topics(t1.categories), model.task_topics(t2.categories)
        )

    def test_custom_lda_engine(self, topical_histories):
        lda = VariationalLDA(num_topics=3, seed=11)
        model = AffinityModel(lda=lda).fit(topical_histories)
        assert model.effective_topics == 3

    def test_fit_on_pipeline_instance(self, tiny_instance):
        """Affinity fits on a real instance's histories end-to-end."""
        model = AffinityModel(num_topics=4, seed=0).fit(tiny_instance.histories)
        task = tiny_instance.tasks[0]
        worker_id = tiny_instance.workers[0].worker_id
        assert 0.0 <= model.affinity(worker_id, task) <= 1.0


class TestDenseTopicMatrix:
    """The fit-time worker-topic matrix must be an invisible optimization:
    bit-identical affinity matrices vs per-worker stacking."""

    def test_affinity_matrix_bit_identical_to_stacked_path(self, topical_histories):
        model = AffinityModel(num_topics=4, seed=0).fit(topical_histories)
        tasks = [
            make_task(("restaurant",), task_id=0),
            make_task(("nightclub", "bar"), task_id=1),
        ]
        worker_ids = [0, 1, 2, 99]  # 99 is unknown -> uniform prior
        matrix = model.affinity_matrix(worker_ids, tasks)
        stacked = np.stack([model.worker_topics(w) for w in worker_ids]) @ np.stack(
            [model.task_topics(t.categories) for t in tasks]
        ).T
        np.testing.assert_array_equal(matrix, stacked)

    def test_topic_matrix_rows_match_worker_topics(self, topical_histories):
        model = AffinityModel(num_topics=4, seed=0).fit(topical_histories)
        theta = model.topic_matrix([1, 0, 42])
        np.testing.assert_array_equal(theta[0], model.worker_topics(1))
        np.testing.assert_array_equal(theta[1], model.worker_topics(0))
        np.testing.assert_array_equal(
            theta[2], np.full(model.effective_topics, 1.0 / model.effective_topics)
        )

    def test_topic_matrix_rows_aligned_with_sorted_fit_ids(self, topical_histories):
        """Row r of the fit-time matrix belongs to the r-th sorted worker id —
        the same dense ordering SocialGraph assigns its indices."""
        model = AffinityModel(num_topics=4, seed=0).fit(topical_histories)
        for row, worker_id in enumerate(sorted(topical_histories)):
            np.testing.assert_array_equal(
                model._theta_matrix[row], model.worker_topics(worker_id)
            )

    def test_topic_matrix_requires_fit(self):
        with pytest.raises(NotFittedError):
            AffinityModel(num_topics=3).topic_matrix([0])

    def test_refit_clears_unknown_worker_cache(self, topical_histories, history_factory):
        model = AffinityModel(num_topics=4, seed=0).fit(topical_histories)
        uniform = model.worker_topics(7)
        assert np.allclose(uniform, 1.0 / model.effective_topics)
        extended = dict(topical_histories)
        extended[7] = history_factory(7, [(0, 0, t, ("museum",)) for t in range(6)])
        model.fit(extended)
        assert not np.allclose(model.worker_topics(7), uniform)
