"""Tests for repro.assignment.hungarian — from-scratch Kuhn-Munkres."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment import (
    hungarian,
    solve_lexicographic_dense,
    solve_lexicographic_hungarian,
    solve_lexicographic_mcmf,
)
from repro.assignment.solvers import solve_lexicographic


def brute_force_min_cost(cost):
    """Optimal complete assignment by enumeration (tiny matrices only)."""
    n, m = cost.shape
    best = float("inf")
    for columns in itertools.permutations(range(m), n):
        best = min(best, sum(cost[i, j] for i, j in enumerate(columns)))
    return best


class TestHungarian:
    def test_empty_matrix(self):
        assert hungarian(np.zeros((0, 5))) == []

    def test_rejects_more_rows_than_columns(self):
        with pytest.raises(ValueError):
            hungarian(np.zeros((3, 2)))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            hungarian(np.array([[1.0, np.inf]]))

    def test_rejects_one_dimensional(self):
        with pytest.raises(ValueError):
            hungarian(np.zeros(4))

    def test_identity_preference(self):
        cost = np.array([[0.0, 9.0], [9.0, 0.0]])
        assert hungarian(cost) == [0, 1]

    def test_swap_preference(self):
        cost = np.array([[9.0, 0.0], [0.0, 9.0]])
        assert hungarian(cost) == [1, 0]

    def test_rectangular_skips_expensive_column(self):
        cost = np.array([[5.0, 1.0, 9.0], [1.0, 5.0, 9.0]])
        assert hungarian(cost) == [1, 0]

    def test_columns_distinct(self):
        rng = np.random.default_rng(0)
        cost = rng.random((8, 12))
        columns = hungarian(cost)
        assert len(set(columns)) == len(columns) == 8

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 5),
        extra=st.integers(0, 3),
        seed=st.integers(0, 10_000),
    )
    def test_matches_brute_force(self, n, extra, seed):
        rng = np.random.default_rng(seed)
        cost = np.round(rng.random((n, n + extra)) * 10, 3)
        columns = hungarian(cost)
        got = sum(cost[i, j] for i, j in enumerate(columns))
        assert got == pytest.approx(brute_force_min_cost(cost))

    def test_ties_still_optimal(self):
        cost = np.ones((3, 3))
        columns = hungarian(cost)
        assert sorted(columns) == [0, 1, 2]


class TestLexicographicHungarian:
    def test_empty_and_all_infeasible(self):
        assert solve_lexicographic_hungarian(np.zeros((0, 0)), np.zeros((0, 0), bool)) == []
        assert solve_lexicographic_hungarian(
            np.ones((2, 2)), np.zeros((2, 2), bool)
        ) == []

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_lexicographic_hungarian(np.ones((2, 2)), np.ones((2, 3), bool))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            solve_lexicographic_hungarian(
                np.array([[-1.0]]), np.array([[True]])
            )

    def test_tall_matrix_transposed_internally(self):
        # 3 workers, 1 task: exactly one pair chosen, the cheapest.
        cost = np.array([[5.0], [1.0], [3.0]])
        feasible = np.ones((3, 1), dtype=bool)
        assert solve_lexicographic_hungarian(cost, feasible) == [(1, 0)]

    def test_cardinality_dominates_cost(self):
        # Taking the expensive pair for worker 0 allows worker 1 to match,
        # so the 2-pair solution must win over the cheap 1-pair one.
        cost = np.array([[0.1, 100.0], [np.nan, 0.1]])
        cost = np.nan_to_num(cost, nan=0.0)
        feasible = np.array([[True, True], [False, True]])
        pairs = solve_lexicographic_hungarian(cost, feasible)
        assert sorted(pairs) == [(0, 0), (1, 1)]

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 7),
        cols=st.integers(1, 7),
        density=st.floats(0.1, 1.0),
        seed=st.integers(0, 10_000),
    )
    def test_agrees_with_other_engines(self, rows, cols, density, seed):
        rng = np.random.default_rng(seed)
        cost = np.round(rng.random((rows, cols)) * 5, 3)
        feasible = rng.random((rows, cols)) < density
        ours = solve_lexicographic_hungarian(cost, feasible)
        dense = solve_lexicographic_dense(cost, feasible)
        mcmf = solve_lexicographic_mcmf(cost, feasible)
        assert len(ours) == len(dense) == len(mcmf)
        total = lambda pairs: sum(cost[r, c] for r, c in pairs)
        assert total(ours) == pytest.approx(total(dense), abs=1e-9)
        assert total(ours) == pytest.approx(total(mcmf), abs=1e-9)

    def test_engine_dispatch(self):
        cost = np.array([[1.0, 2.0], [2.0, 1.0]])
        feasible = np.ones((2, 2), dtype=bool)
        pairs = solve_lexicographic(cost, feasible, engine="hungarian")
        assert sorted(pairs) == [(0, 0), (1, 1)]
        with pytest.raises(ValueError):
            solve_lexicographic(cost, feasible, engine="simplex")
