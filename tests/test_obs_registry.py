"""Tests for repro.obs.registry — labelled instruments and snapshots."""

import pytest

from repro.obs.histo import SECONDS_HISTOGRAM
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_is_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0


class TestRegistry:
    def test_idempotent_registration_shares_the_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_rounds_total", "rounds")
        b = registry.counter("repro_rounds_total", "rounds")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_y", labels=("phase",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_y", labels=("shard",))

    def test_label_arity_enforced(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_z", labels=("phase",))
        with pytest.raises(ValueError, match="labels"):
            family.labels()
        family.labels("solve").inc()
        assert family.labels("solve").value == 1.0

    def test_histogram_uses_log_histogram_options(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_seconds", **SECONDS_HISTOGRAM)
        histogram.record(0.5)
        assert histogram.count == 1
        assert histogram.min_value == SECONDS_HISTOGRAM["min_value"]

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_b")
        registry.counter("repro_a")
        assert [f.name for f in registry.families()] == ["repro_a", "repro_b"]


class TestSnapshotDeterminism:
    @staticmethod
    def _updates():
        def count(registry):
            registry.counter("repro_a", "a").inc(2)

        def level(registry):
            registry.gauge("repro_b", "b").set(7)

        def latency(registry):
            family = registry.histogram(
                "repro_c", "c", labels=("phase",), **SECONDS_HISTOGRAM
            )
            family.labels("solve").record(0.25)
            family.labels("drain").record(0.01)

        return [count, level, latency]

    def test_snapshot_independent_of_registration_order(self):
        def build(order):
            registry = MetricsRegistry()
            for step in order:
                step(registry)
            return registry.snapshot()

        updates = self._updates()
        assert build(updates) == build(list(reversed(updates)))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        for step in self._updates():
            step(registry)
        snapshot = registry.snapshot()
        assert snapshot["repro_a"]["kind"] == "counter"
        assert snapshot["repro_a"]["series"][""] == 2.0
        assert snapshot["repro_b"]["series"][""] == 7.0
        assert snapshot["repro_c"]["labelnames"] == ["phase"]
        assert snapshot["repro_c"]["series"]["solve"]["count"] == 1


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry.enabled is True
        counter = NULL_REGISTRY.counter("anything")
        counter.inc()
        counter.inc(-5)  # the null instrument skips validation too
        assert counter.value == 0.0
        # Every registration hands back the one shared no-op.
        assert NULL_REGISTRY.histogram("h").labels("x") is NULL_REGISTRY.gauge("g")
        assert NULL_REGISTRY.families() == []
        assert NULL_REGISTRY.snapshot() == {}
