"""Tests for Random Walk with Restart."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Point
from repro.willingness import random_walk_with_restart


class TestRWR:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            random_walk_with_restart([])

    def test_bad_restart_rejected(self):
        with pytest.raises(ValueError):
            random_walk_with_restart([Point(0, 0)], restart=0.0)
        with pytest.raises(ValueError):
            random_walk_with_restart([Point(0, 0)], restart=1.5)

    def test_single_location_gets_all_mass(self):
        result = random_walk_with_restart([Point(1, 1), Point(1, 1)])
        assert result.locations == (Point(1, 1),)
        assert result.probabilities[0] == pytest.approx(1.0)

    def test_probabilities_sum_to_one(self):
        locations = [Point(0, 0), Point(1, 0), Point(0, 0), Point(2, 2)]
        result = random_walk_with_restart(locations)
        assert result.probabilities.sum() == pytest.approx(1.0)
        assert (result.probabilities > 0).all()

    def test_deduplicates_locations(self):
        locations = [Point(0, 0), Point(1, 1), Point(0, 0)]
        result = random_walk_with_restart(locations)
        assert len(result.locations) == 2

    def test_frequent_location_gets_more_mass(self):
        # Walk oscillates around A: A B A C A D -> A has higher stationary mass.
        a = Point(0, 0)
        locations = [a, Point(1, 0), a, Point(2, 0), a, Point(3, 0)]
        result = random_walk_with_restart(locations, restart=0.15)
        mass = dict(zip(result.locations, result.probabilities))
        assert mass[a] == pytest.approx(max(result.probabilities))

    def test_probability_of_unvisited_is_zero(self):
        result = random_walk_with_restart([Point(0, 0)])
        assert result.probability_of(Point(9, 9)) == 0.0

    def test_probability_of_matches_vector(self):
        locations = [Point(0, 0), Point(1, 1), Point(0, 0)]
        result = random_walk_with_restart(locations)
        for location, probability in zip(result.locations, result.probabilities):
            assert result.probability_of(location) == pytest.approx(float(probability))

    def test_restart_one_gives_uniform(self):
        locations = [Point(0, 0), Point(1, 0), Point(2, 0)]
        result = random_walk_with_restart(locations, restart=1.0)
        np.testing.assert_allclose(result.probabilities, 1.0 / 3.0, atol=1e-9)

    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=1, max_size=30,
        ),
        st.floats(0.05, 1.0),
    )
    def test_stationary_is_fixed_point(self, coords, restart):
        locations = [Point(float(x), float(y)) for x, y in coords]
        result = random_walk_with_restart(locations, restart=restart, tol=1e-12)
        assert result.probabilities.sum() == pytest.approx(1.0, abs=1e-6)
        assert (result.probabilities >= -1e-12).all()
