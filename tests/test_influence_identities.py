"""Algebraic identities of the influence model and its ablations.

The ablated models are defined by dropping one factor from

    if(w_s, s) = P_aff(w_s, s) * sum_{i != s} P_wil(w_i, s) * P_pro(w_s, w_i)

so specific identities must hold between the four matrices; these tests pin
the formulas, not just "the numbers differ".
"""

import numpy as np
import pytest

from repro.influence import InfluenceComponents, InfluenceModel


@pytest.fixture()
def matrices(fitted_models, tiny_instance):
    """Influence matrices of the full model and the three ablations."""
    workers = tiny_instance.workers
    tasks = tiny_instance.tasks

    def matrix_of(components):
        return fitted_models.influence_model(components).influence_matrix(
            workers, tasks
        )

    return {
        "IA": matrix_of(None),
        "IA-WP": matrix_of(InfluenceComponents.without_affinity()),
        "IA-AP": matrix_of(InfluenceComponents.without_willingness()),
        "IA-AW": matrix_of(InfluenceComponents.without_propagation()),
        "affinity": fitted_models.affinity.affinity_matrix(
            [w.worker_id for w in workers], tasks
        ),
    }


class TestAblationIdentities:
    def test_full_equals_affinity_times_wp(self, matrices):
        """IA = P_aff ⊙ IA-WP elementwise (dropping affinity divides it out)."""
        np.testing.assert_allclose(
            matrices["IA"], matrices["affinity"] * matrices["IA-WP"],
            rtol=1e-10, atol=1e-12,
        )

    def test_ap_is_rank_one_in_tasks(self, matrices):
        """IA-AP = P_aff ⊙ (sigma(w) repeated over tasks): dividing out the
        affinity leaves a candidate-only column, identical for every task."""
        affinity = matrices["affinity"]
        with np.errstate(divide="ignore", invalid="ignore"):
            inner = np.where(affinity > 0, matrices["IA-AP"] / affinity, np.nan)
        for row in inner:
            finite = row[np.isfinite(row)]
            if len(finite) > 1:
                assert np.allclose(finite, finite[0], rtol=1e-8)

    def test_all_matrices_non_negative(self, matrices):
        for name in ("IA", "IA-WP", "IA-AP", "IA-AW"):
            assert (matrices[name] >= 0).all(), name

    def test_components_produce_distinct_models(self, matrices):
        names = ["IA", "IA-WP", "IA-AP", "IA-AW"]
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                assert not np.allclose(matrices[a], matrices[b]), (a, b)

    def test_single_pair_matches_matrix(self, fitted_models, tiny_instance):
        model = fitted_models.influence_model()
        workers = tiny_instance.workers[:5]
        tasks = tiny_instance.tasks[:5]
        matrix = model.influence_matrix(workers, tasks)
        for i, w in enumerate(workers):
            for j, s in enumerate(tasks):
                assert model.influence(w, s) == pytest.approx(
                    float(matrix[i, j]), abs=1e-12
                )


class TestPropagationTerms:
    def test_propagation_to_others_excludes_self(self, fitted_models, tiny_instance):
        """sigma(w) counts the self term; Eq. 7's sum must not."""
        model = fitted_models.influence_model()
        for w in tiny_instance.workers[:10]:
            sigma = model.sigma(w.worker_id)
            others = model.propagation_to_others(w.worker_id)
            assert 0.0 <= others <= sigma + 1e-9

    def test_empty_inputs_give_empty_matrix(self, fitted_models):
        model = fitted_models.influence_model()
        assert model.influence_matrix([], []).shape == (0, 0)
