"""Tests for the pipeline's model-ablation knobs (affinity / movement / LT)."""

import numpy as np
import pytest

from repro import DITAPipeline, IAAssigner, PipelineConfig, PreparedInstance
from repro.affinity import AffinityModel, TfidfAffinity
from repro.exceptions import ConfigurationError
from repro.willingness import GeneralizedHistoricalAcceptance, HistoricalAcceptance


def fast_config(**overrides) -> PipelineConfig:
    defaults = dict(
        num_topics=6, propagation_mode="fixed", num_rrr_sets=800, seed=42
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestConfigValidation:
    def test_unknown_affinity_engine(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(affinity_engine="bm25")

    def test_unknown_movement_family(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(movement_family="levy")

    def test_unknown_propagation_model(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(propagation_model="sir")

    def test_lt_requires_fixed_mode(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(propagation_model="lt", propagation_mode="rpo")
        # And is accepted with fixed sampling.
        config = PipelineConfig(propagation_model="lt", propagation_mode="fixed")
        assert config.propagation_model == "lt"

    def test_defaults_are_paper_choices(self):
        config = PipelineConfig()
        assert config.affinity_engine == "lda"
        assert config.movement_family == "pareto"
        assert config.propagation_model == "ic"


class TestPipelineEngines:
    def test_tfidf_engine_selected(self, tiny_instance):
        models = DITAPipeline(fast_config(affinity_engine="tfidf")).fit(tiny_instance)
        assert isinstance(models.affinity, TfidfAffinity)

    def test_lda_engine_selected(self, tiny_instance):
        models = DITAPipeline(fast_config()).fit(tiny_instance)
        assert isinstance(models.affinity, AffinityModel)

    def test_pareto_uses_reference_ha(self, tiny_instance):
        models = DITAPipeline(fast_config()).fit(tiny_instance)
        assert isinstance(models.willingness, HistoricalAcceptance)

    def test_alternative_movement_family(self, tiny_instance):
        models = DITAPipeline(fast_config(movement_family="exponential")).fit(
            tiny_instance
        )
        assert isinstance(models.willingness, GeneralizedHistoricalAcceptance)
        assert models.willingness.family == "exponential"

    @pytest.mark.parametrize("family", ["exponential", "lognormal", "rayleigh"])
    def test_assignment_runs_with_every_family(self, tiny_instance, family):
        models = DITAPipeline(fast_config(movement_family=family)).fit(tiny_instance)
        prepared = PreparedInstance(tiny_instance, models.influence_model())
        assignment = IAAssigner().assign(prepared)
        assert len(assignment) > 0

    def test_lt_propagation_runs_end_to_end(self, tiny_instance):
        models = DITAPipeline(
            fast_config(propagation_model="lt")
        ).fit(tiny_instance)
        prepared = PreparedInstance(tiny_instance, models.influence_model())
        assignment = IAAssigner().assign(prepared)
        assert len(assignment) > 0

    def test_lt_and_ic_sample_different_collections(self, tiny_instance):
        """The two diffusion models produce genuinely different RRR sets
        (same seed, same graph), and both cover at least the roots."""
        ic = DITAPipeline(fast_config()).fit(tiny_instance).propagation
        lt = DITAPipeline(fast_config(propagation_model="lt")).fit(
            tiny_instance
        ).propagation
        assert len(ic) == len(lt)
        assert ic.coverage_fraction().max() > 0
        assert lt.coverage_fraction().max() > 0
        different = any(
            len(a) != len(b) or (a != b).any()
            for a, b in zip(ic.members, lt.members)
        )
        assert different

    def test_tfidf_and_lda_produce_different_influence(self, tiny_instance):
        lda = DITAPipeline(fast_config()).fit(tiny_instance)
        tfidf = DITAPipeline(fast_config(affinity_engine="tfidf")).fit(tiny_instance)
        lda_matrix = PreparedInstance(
            tiny_instance, lda.influence_model()
        ).influence_matrix
        tfidf_matrix = PreparedInstance(
            tiny_instance, tfidf.influence_model()
        ).influence_matrix
        assert lda_matrix.shape == tfidf_matrix.shape
        assert not np.allclose(lda_matrix, tfidf_matrix)


class TestEdgeModelKnob:
    def test_malformed_edge_models_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(edge_model="wc")
        with pytest.raises(ConfigurationError):
            PipelineConfig(edge_model="uniform:abc")
        with pytest.raises(ConfigurationError):
            PipelineConfig(edge_model="uniform:0.0")

    def test_parsed_edge_model(self):
        assert PipelineConfig().parsed_edge_model() == "indegree"
        assert PipelineConfig(edge_model="trivalency").parsed_edge_model() == "trivalency"
        assert PipelineConfig(edge_model="uniform:0.25").parsed_edge_model() == (
            "uniform", 0.25,
        )

    @pytest.mark.parametrize("edge_model", ["trivalency", "uniform:0.2"])
    def test_pipeline_runs_with_edge_model(self, tiny_instance, edge_model):
        models = DITAPipeline(fast_config(edge_model=edge_model)).fit(tiny_instance)
        prepared = PreparedInstance(tiny_instance, models.influence_model())
        assignment = IAAssigner().assign(prepared)
        assert len(assignment) > 0

    def test_edge_model_changes_propagation(self, tiny_instance):
        indegree = DITAPipeline(fast_config()).fit(tiny_instance).propagation
        uniform = DITAPipeline(
            fast_config(edge_model="uniform:0.05")
        ).fit(tiny_instance).propagation
        # Sparse uniform arcs produce much smaller reverse-reachable sets.
        mean = lambda c: sum(len(m) for m in c.members) / len(c)
        assert mean(uniform) < mean(indegree)
