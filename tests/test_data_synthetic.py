"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, brightkite_like, foursquare_like, generate_dataset
from repro.data.categories import all_categories
from repro.exceptions import ConfigurationError


class TestSyntheticConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticConfig(num_users=1)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(num_days=0)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(active_probability=0.0)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(pareto_shape=-1.0)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(num_users=10, ba_attachment=10)

    def test_scaled_override(self):
        config = SyntheticConfig(num_users=100).scaled(num_users=50, seed=9)
        assert config.num_users == 50 and config.seed == 9

    def test_presets_have_expected_shapes(self):
        bk = brightkite_like(scale=0.1)
        fs = foursquare_like(scale=0.1)
        assert bk.name == "BK-like" and fs.name == "FS-like"
        # BK: more users relative to FS at the same scale; FS denser graph.
        assert bk.num_users > fs.num_users
        assert fs.ba_attachment > bk.ba_attachment
        assert fs.mean_checkins_per_user_day > bk.mean_checkins_per_user_day


class TestGenerateDataset:
    @pytest.fixture(scope="class")
    def small(self):
        return generate_dataset(
            SyntheticConfig(
                name="small", num_users=50, num_venues=30, num_days=8,
                area_km=20.0, num_clusters=3, seed=5,
            )
        )

    def test_deterministic_given_seed(self):
        config = SyntheticConfig(num_users=30, num_venues=20, num_days=3, seed=77)
        a = generate_dataset(config)
        b = generate_dataset(config)
        assert a.num_checkins == b.num_checkins
        assert [(c.user_id, c.venue_id, c.time) for c in a.checkins[:20]] == [
            (c.user_id, c.venue_id, c.time) for c in b.checkins[:20]
        ]

    def test_different_seeds_differ(self):
        base = SyntheticConfig(num_users=30, num_venues=20, num_days=3)
        a = generate_dataset(base.scaled(seed=1))
        b = generate_dataset(base.scaled(seed=2))
        assert [(c.user_id, c.time) for c in a.checkins] != [
            (c.user_id, c.time) for c in b.checkins
        ]

    def test_all_referenced_ids_valid(self, small):
        users = set(small.user_ids)
        for checkin in small.checkins:
            assert checkin.user_id in users
            assert checkin.venue_id in small.venues

    def test_categories_come_from_taxonomy(self, small):
        vocabulary = set(all_categories())
        for venue in small.venues.values():
            assert venue.categories, "every venue needs at least one category"
            assert set(venue.categories) <= vocabulary

    def test_checkins_within_day_span(self, small):
        assert small.checkins[-1].day < 8

    def test_venues_inside_area(self, small):
        for venue in small.venues.values():
            assert 0.0 <= venue.location.x <= 20.0
            assert 0.0 <= venue.location.y <= 20.0

    def test_social_graph_connected_enough(self, small):
        # BA graph with m=3 over 50 nodes has >= (n - m) * m edges.
        assert len(small.social_edges) >= 50

    def test_checkin_locations_match_venue(self, small):
        for checkin in small.checkins[:100]:
            assert checkin.location == small.venues[checkin.venue_id].location

    def test_self_similar_movement(self, small):
        """Consecutive jump lengths should be heavy-tailed: many small
        jumps, few large ones (the Pareto property HA relies on)."""
        per_user: dict[int, list[float]] = {}
        for checkin in small.checkins:
            per_user.setdefault(checkin.user_id, []).append(checkin)
        jumps = []
        for checkins in per_user.values():
            checkins.sort(key=lambda c: c.time)
            for a, b in zip(checkins, checkins[1:]):
                jumps.append(a.location.distance_to(b.location))
        jumps = np.array(jumps)
        assert len(jumps) > 100
        median = np.median(jumps)
        p90 = np.percentile(jumps, 90)
        assert p90 > 2 * max(median, 0.1)  # heavy tail
