"""Tests for repro.stream.events — typed events and the EventLog."""

import pytest
from hypothesis import given, settings

from repro.entities import Task, Worker
from repro.geo import Point  # noqa: F401 - used in payload fingerprint tests
from repro.stream import (
    EventLog,
    TaskCancelEvent,
    TaskExpiryEvent,
    TaskPublishEvent,
    WorkerArrivalEvent,
    WorkerChurnEvent,
    WorkerRelocateEvent,
    day_stream,
    expiry_events,
    log_from_arrivals,
    synthetic_stream,
)
from repro.stream.events import PHASE_ARRIVAL, PHASE_EXPIRY, PHASE_PUBLISH

from tests.strategies import event_logs, stream_worlds


def make_worker(worker_id, x=0.0, y=0.0):
    return Worker(worker_id=worker_id, location=Point(x, y), reachable_km=10.0)


def make_task(task_id, published=0.0, phi=5.0, x=1.0, y=0.0):
    return Task(
        task_id=task_id, location=Point(x, y), publication_time=published,
        valid_hours=phi,
    )


class TestEventTypes:
    def test_entity_ids(self):
        assert WorkerArrivalEvent(time=1.0, worker=make_worker(7)).entity_id == 7
        assert TaskPublishEvent(time=1.0, task=make_task(3)).entity_id == 3
        assert TaskCancelEvent(time=1.0, task_id=4).entity_id == 4
        assert TaskExpiryEvent(time=1.0, task_id=5).entity_id == 5
        assert WorkerChurnEvent(time=1.0, worker_id=6).entity_id == 6

    def test_admission_phases_precede_deferred(self):
        assert PHASE_ARRIVAL < PHASE_EXPIRY
        assert PHASE_PUBLISH < PHASE_EXPIRY

    def test_expiry_events_use_deadlines(self):
        events = expiry_events([make_task(0, published=2.0, phi=3.0)])
        assert events[0].time == pytest.approx(5.0)
        assert events[0].task_id == 0


class TestEventLogOrdering:
    def test_sorted_by_time_then_phase_then_entity(self):
        log = EventLog(
            [
                TaskExpiryEvent(time=1.0, task_id=0),
                WorkerArrivalEvent(time=1.0, worker=make_worker(2)),
                TaskPublishEvent(time=1.0, task=make_task(1, published=1.0)),
                WorkerArrivalEvent(time=0.5, worker=make_worker(9)),
            ]
        )
        kinds = [(e.time, e.phase, e.entity_id) for e in log]
        assert kinds == sorted(kinds)
        assert log[0].entity_id == 9  # earliest time first
        assert log[1].phase == PHASE_ARRIVAL  # arrival before publish at t=1

    def test_simultaneous_events_deterministic_across_source_orders(self):
        """The same event set yields the same log order however the sources
        were interleaved (tie-break = time, phase, entity id)."""
        events = [
            WorkerArrivalEvent(time=2.0, worker=make_worker(5)),
            WorkerArrivalEvent(time=2.0, worker=make_worker(1)),
            TaskPublishEvent(time=2.0, task=make_task(8, published=2.0)),
            TaskExpiryEvent(time=2.0, task_id=3),
        ]
        forward = EventLog(events)
        backward = EventLog(reversed(events))
        assert forward.events == backward.events
        assert [e.entity_id for e in forward] == [1, 5, 8, 3]

    def test_merged_combines_sources(self):
        arrivals = [
            WorkerArrivalEvent(time=t, worker=make_worker(i))
            for i, t in enumerate((0.0, 2.0, 4.0))
        ]
        publishes = [
            TaskPublishEvent(time=t, task=make_task(i, published=t))
            for i, t in enumerate((3.0, 1.0))  # unsorted source is fine
        ]
        log = EventLog.merged(arrivals, publishes)
        assert [e.time for e in log] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_len_getitem_iter(self):
        log = EventLog([WorkerArrivalEvent(time=0.0, worker=make_worker(1))])
        assert len(log) == 1
        assert log[0].entity_id == 1
        assert list(log) == [log[0]]


class TestEventLogProperties:
    def test_start_time_ignores_deferred_events(self):
        log = EventLog(
            [
                TaskExpiryEvent(time=0.5, task_id=0),
                TaskPublishEvent(time=2.0, task=make_task(0, published=2.0)),
            ]
        )
        assert log.start_time() == pytest.approx(2.0)

    def test_start_time_none_without_admissions(self):
        assert EventLog([TaskExpiryEvent(time=1.0, task_id=0)]).start_time() is None
        assert EventLog([]).start_time() is None

    def test_has_arrivals(self):
        assert not EventLog([]).has_arrivals()
        assert EventLog(
            [WorkerArrivalEvent(time=0.0, worker=make_worker(1))]
        ).has_arrivals()

    def test_last_deadline(self):
        tasks = [make_task(0, published=0.0, phi=2.0), make_task(1, published=1.0, phi=5.0)]
        log = log_from_arrivals([], tasks)
        assert log.last_deadline() == pytest.approx(6.0)
        assert EventLog([]).last_deadline() is None

    def test_fingerprint_sensitive_to_content(self):
        log_a = EventLog([WorkerArrivalEvent(time=0.0, worker=make_worker(1))])
        log_b = EventLog([WorkerArrivalEvent(time=0.0, worker=make_worker(2))])
        assert log_a.fingerprint() == EventLog(log_a.events).fingerprint()
        assert log_a.fingerprint() != log_b.fingerprint()

    def test_fingerprint_sensitive_to_payload_attributes(self):
        """Identical (time, id) but different worker/task attributes must
        change the fingerprint — resuming a checkpoint against the same day
        rebuilt with another radius or validity must fail fast."""
        wide = EventLog(
            [WorkerArrivalEvent(
                time=1.0,
                worker=Worker(worker_id=3, location=Point(0, 0), reachable_km=25.0),
            )]
        )
        narrow = EventLog(
            [WorkerArrivalEvent(
                time=1.0,
                worker=Worker(worker_id=3, location=Point(0, 0), reachable_km=10.0),
            )]
        )
        assert wide.fingerprint() != narrow.fingerprint()
        short = EventLog(
            [TaskPublishEvent(time=1.0, task=make_task(3, phi=2.0))]
        )
        long = EventLog(
            [TaskPublishEvent(time=1.0, task=make_task(3, phi=8.0))]
        )
        assert short.fingerprint() != long.fingerprint()
        plain = EventLog(
            [TaskPublishEvent(time=1.0, task=make_task(3))]
        )
        tagged_task = Task(
            task_id=3, location=Point(1.0, 0.0), publication_time=0.0,
            valid_hours=5.0, categories=("cafe",),
        )
        tagged = EventLog([TaskPublishEvent(time=1.0, task=tagged_task)])
        assert plain.fingerprint() != tagged.fingerprint()


class TestFingerprintPinned:
    """Regression pins for the columnar buffer fingerprint.

    The digests hash the structured-array buffer and the payload attribute
    tables directly; these exact values guard against silent format drift —
    a stale checkpoint must keep failing fast with the same fingerprint it
    was saved with.  If a deliberate format change breaks these, bump
    ``CHECKPOINT_VERSION`` and re-pin.
    """

    def test_empty_log(self):
        assert EventLog([]).fingerprint() == (
            "a4a1965ea4083371a44768f5190c24feb0e3d7a74fa3f3d9bf5336d67ca7a846"
        )

    def test_hand_built_log_all_event_kinds(self):
        log = EventLog([
            WorkerArrivalEvent(
                time=0.25,
                worker=Worker(worker_id=3, location=Point(1.5, -2.0),
                              reachable_km=12.5, speed_kmh=4.0),
            ),
            TaskPublishEvent(
                time=0.5,
                task=Task(task_id=7, location=Point(0.0, 3.25),
                          publication_time=0.5, valid_hours=2.0,
                          categories=("cafe", "bar"), venue_id=11),
            ),
            TaskCancelEvent(time=1.0, task_id=7),
            TaskExpiryEvent(time=2.5, task_id=7),
            WorkerChurnEvent(time=3.0, worker_id=3),
        ])
        assert log.fingerprint() == (
            "aba38c1758324362e2a7a08aa52c93fa524bee94a3d5e9c37121466d527c7fa9"
        )

    def test_synthetic_stream_log(self):
        _, log = synthetic_stream(
            num_workers=12, num_tasks=9, duration_hours=6.0,
            churn_fraction=0.25, cancel_fraction=0.25, seed=11,
        )
        assert log.fingerprint() == (
            "5a64966fc8a842e624e535e217fb327f0f2ab7a71c821696dade1bd14dbf71be"
        )

    def test_fingerprint_independent_of_construction_path(self):
        """Array-built and object-built logs of the same events hash alike."""
        _, log = synthetic_stream(
            num_workers=10, num_tasks=8, duration_hours=6.0,
            churn_fraction=0.3, cancel_fraction=0.3, seed=19,
        )
        rebuilt = EventLog(log.events)
        assert rebuilt.fingerprint() == log.fingerprint()
        assert rebuilt.events == log.events


class TestColumnarAccess:
    def test_columns_sorted_and_typed(self):
        _, log = synthetic_stream(num_workers=6, num_tasks=5, seed=2)
        columns = log.columns
        key = list(zip(columns["time"], columns["phase"], columns["entity_id"]))
        assert key == sorted(key)
        assert not columns.flags.writeable

    def test_payload_side_tables(self):
        _, log = synthetic_stream(num_workers=4, num_tasks=3, seed=2)
        import numpy as np

        arrivals = np.flatnonzero(log.kinds == 0)
        for index in arrivals:
            worker = log.worker_at(int(index))
            assert worker.worker_id == int(log.entity_ids[index])
        publishes = np.flatnonzero(log.kinds == 1)
        for index in publishes:
            task = log.task_at(int(index))
            assert task.task_id == int(log.entity_ids[index])
        with pytest.raises(IndexError):
            log.worker_at(int(publishes[0]))
        with pytest.raises(IndexError):
            log.task_at(int(arrivals[0]))

    def test_drain_stop_matches_event_scan(self):
        from repro.stream.events import DEFERRED_PHASE

        _, log = synthetic_stream(
            num_workers=30, num_tasks=25, duration_hours=8.0,
            churn_fraction=0.3, cancel_fraction=0.3, seed=5,
        )
        for fire_time in (0.0, 1.0, 3.7, float(log.times[7]), 100.0):
            expected = 0
            while expected < len(log):
                event = log[expected]
                if event.time > fire_time:
                    break
                if event.time == fire_time and event.phase >= DEFERRED_PHASE:
                    break
                expected += 1
            assert log.drain_stop(0, fire_time) == expected
        assert log.drain_stop(len(log), 0.0) == len(log)  # cursor floor

    def test_next_count_time_matches_event_scan(self):
        _, log = synthetic_stream(
            num_workers=20, num_tasks=20, duration_hours=8.0, seed=6
        )
        for cursor in (0, 5, len(log) - 3):
            for count in (1, 4, 50):
                for limit in (2.0, 8.0, 100.0):
                    pending = 0
                    expected = None
                    for position in range(cursor, len(log)):
                        event = log[position]
                        if event.time > limit:
                            break
                        if event.phase in (PHASE_ARRIVAL, PHASE_PUBLISH):
                            pending += 1
                            if pending >= count:
                                expected = event.time
                                break
                    assert log.next_count_time(cursor, count, limit) == expected

    def test_from_columns_matches_object_construction(self):
        import numpy as np

        worker = Worker(worker_id=4, location=Point(1.0, 2.0), reachable_km=9.0)
        task = Task(task_id=6, location=Point(2.0, 1.0), publication_time=0.5,
                    valid_hours=3.0)
        from_objects = EventLog([
            WorkerArrivalEvent(time=1.0, worker=worker),
            TaskPublishEvent(time=0.5, task=task),
            TaskExpiryEvent(time=3.5, task_id=6),
        ])
        from_arrays = EventLog.from_columns(
            np.array([1.0, 0.5, 3.5]),
            np.array([0, 1, 3]),
            np.array([4, 6, 6]),
            workers=[worker],
            tasks=[task],
        )
        assert from_arrays.events == from_objects.events
        assert from_arrays.fingerprint() == from_objects.fingerprint()

    def test_from_columns_rejects_mismatched_column_lengths(self):
        import numpy as np

        from repro.exceptions import DataError

        with pytest.raises(DataError, match="equal length"):
            EventLog.from_columns(np.zeros(2), np.zeros(1, np.int64), np.zeros(2, np.int64))
        with pytest.raises(DataError, match="equal length"):
            EventLog.from_columns(np.zeros(1), np.zeros(1, np.int64), np.zeros(3, np.int64))

    def test_from_columns_rejects_unknown_kind_codes(self):
        import numpy as np

        from repro.exceptions import DataError

        with pytest.raises(DataError, match="unknown event kind"):
            EventLog.from_columns(np.zeros(1), np.array([9]), np.zeros(1, np.int64))
        with pytest.raises(DataError, match="unknown event kind"):
            EventLog.from_columns(np.zeros(1), np.array([-1]), np.zeros(1, np.int64))

    def test_from_columns_rejects_non_finite_times(self):
        import numpy as np

        from repro.exceptions import DataError

        with pytest.raises(DataError, match="non-finite"):
            EventLog.from_columns(
                np.array([np.nan]), np.array([3]), np.array([0])
            )

    def test_from_columns_rejects_nan_coordinates(self):
        import numpy as np

        from repro.exceptions import DataError

        worker = Worker(worker_id=1, location=Point(0.0, 0.0), reachable_km=5.0)
        # A relocation row with NaN target coordinates.
        with pytest.raises(DataError, match="NaN"):
            EventLog.from_columns(
                np.array([0.0, 1.0]), np.array([0, 5]), np.array([1, 1]),
                workers=[worker],
                x=np.array([np.nan, np.nan]), y=np.array([np.nan, 2.0]),
            )
        # A payload entity with a NaN location.
        bad_task = Task(
            task_id=2, location=Point(float("nan"), 0.0),
            publication_time=0.0, valid_hours=1.0,
        )
        with pytest.raises(DataError, match="NaN coordinates"):
            EventLog.from_columns(
                np.array([0.0]), np.array([1]), np.array([2]), tasks=[bad_task]
            )

    def test_from_columns_rejects_relocation_without_coordinates(self):
        import numpy as np

        from repro.exceptions import DataError

        worker = Worker(worker_id=1, location=Point(0.0, 0.0), reachable_km=5.0)
        with pytest.raises(DataError, match="x and y"):
            EventLog.from_columns(
                np.array([0.0, 1.0]), np.array([0, 5]), np.array([1, 1]),
                workers=[worker],
            )
        with pytest.raises(DataError, match="given together"):
            EventLog.from_columns(
                np.array([0.0]), np.array([0]), np.array([1]),
                workers=[worker], x=np.array([0.0]),
            )
        with pytest.raises(DataError, match="row count"):
            EventLog.from_columns(
                np.array([0.0]), np.array([0]), np.array([1]),
                workers=[worker], x=np.array([0.0]), y=np.array([0.0, 1.0]),
            )

    def test_from_columns_rejects_relocation_of_unknown_worker(self):
        import numpy as np

        from repro.exceptions import DataError

        with pytest.raises(DataError, match="precedes any arrival"):
            EventLog.from_columns(
                np.array([1.0]), np.array([5]), np.array([7]),
                x=np.array([1.0]), y=np.array([2.0]),
            )

    def test_from_columns_rejects_bad_payload_references(self):
        import numpy as np

        from repro.exceptions import DataError

        worker = Worker(worker_id=1, location=Point(0.0, 0.0), reachable_km=5.0)
        with pytest.raises(DataError, match="payload"):
            EventLog.from_columns(  # -1 sentinel on an arrival row
                np.array([1.0]), np.array([0]), np.array([1]),
                payload=np.array([-1]), workers=[worker],
            )
        with pytest.raises(DataError, match="payload"):
            EventLog.from_columns(  # out-of-range side-table index
                np.array([1.0]), np.array([0]), np.array([1]),
                payload=np.array([3]), workers=[worker],
            )
        with pytest.raises(DataError, match="row count"):
            EventLog.from_columns(
                np.array([1.0]), np.array([0]), np.array([1]),
                payload=np.array([0, 0]), workers=[worker],
            )

    def test_cell_keys_sentinel_and_quantization(self):
        import numpy as np

        from repro.stream.shards import unpack_cell

        _, log = synthetic_stream(num_workers=3, num_tasks=2,
                                  churn_fraction=1.0, seed=8)
        keys = log.cell_keys(5.0)
        located = ~np.isnan(log.columns["x"])
        for index in np.flatnonzero(located):
            kx, ky = unpack_cell(int(keys[index]))
            assert kx == int(np.floor(log.columns["x"][index] / 5.0))
            assert ky == int(np.floor(log.columns["y"][index] / 5.0))
        with pytest.raises(ValueError):
            log.cell_keys(0.0)

    def test_cell_keys_rejects_out_of_range_quantization(self):
        import numpy as np

        from repro.exceptions import DataError
        from repro.stream.events import CELL_OFFSET

        def log_at(x):
            worker = Worker(worker_id=1, location=Point(x, 0.0), reachable_km=5.0)
            return EventLog.from_columns(
                np.array([1.0]), np.array([0]), np.array([1]), workers=[worker],
            )

        # The last valid cell index on either side of zero passes …
        log_at(float(CELL_OFFSET - 1)).cell_keys(1.0)
        log_at(-float(CELL_OFFSET - 1)).cell_keys(1.0)
        # … but quantizing to |k| >= CELL_OFFSET must not silently alias.
        with pytest.raises(DataError, match=r"33554432"):
            log_at(float(CELL_OFFSET)).cell_keys(1.0)
        with pytest.raises(DataError, match="cell_km"):
            log_at(-float(CELL_OFFSET)).cell_keys(1.0)
        # A tiny cell size blows the same bound from ordinary coordinates.
        with pytest.raises(DataError, match="cell_km"):
            log_at(50.0).cell_keys(1e-9)

    def test_geo_cell_key_rejects_out_of_range_quantization(self):
        from repro.exceptions import DataError
        from repro.geo import cell_key
        from repro.stream.events import CELL_OFFSET

        assert cell_key(float(CELL_OFFSET - 1), 0.0, 1.0) == (CELL_OFFSET - 1, 0)
        with pytest.raises(DataError, match="cell_km"):
            cell_key(float(CELL_OFFSET), 0.0, 1.0)
        with pytest.raises(DataError, match="cell_km"):
            cell_key(0.0, -float(CELL_OFFSET), 1.0)
        with pytest.raises(DataError, match="cell_km"):
            cell_key(50.0, 0.0, 1e-9)


class TestLogBuilders:
    def test_log_from_arrivals_has_publish_and_expiry_per_task(self):
        from repro.framework import WorkerArrival

        tasks = [make_task(0, published=0.0), make_task(1, published=2.0)]
        arrivals = [WorkerArrival(worker=make_worker(3), arrival_time=1.0)]
        log = log_from_arrivals(arrivals, tasks)
        assert sum(isinstance(e, TaskPublishEvent) for e in log) == 2
        assert sum(isinstance(e, TaskExpiryEvent) for e in log) == 2
        assert sum(isinstance(e, WorkerArrivalEvent) for e in log) == 1

    def test_log_from_arrivals_extra_events(self):
        log = log_from_arrivals(
            [], [make_task(0)], extra=[WorkerChurnEvent(time=1.0, worker_id=4)]
        )
        assert sum(isinstance(e, WorkerChurnEvent) for e in log) == 1

    def test_day_stream_matches_day_arrivals(self, tiny_dataset, tiny_builder):
        from repro.framework import day_arrivals

        instance, log = day_stream(tiny_dataset, 6)
        arrivals = day_arrivals(tiny_dataset, 6)
        log_workers = {
            e.worker.worker_id for e in log if isinstance(e, WorkerArrivalEvent)
        }
        assert log_workers == {a.worker.worker_id for a in arrivals}
        assert sum(isinstance(e, TaskPublishEvent) for e in log) == len(instance.tasks)


class TestSyntheticStream:
    def test_volumes_and_window(self):
        base, log = synthetic_stream(
            num_workers=40, num_tasks=30, duration_hours=12.0, seed=3
        )
        assert sum(isinstance(e, WorkerArrivalEvent) for e in log) == 40
        assert sum(isinstance(e, TaskPublishEvent) for e in log) == 30
        assert sum(isinstance(e, TaskExpiryEvent) for e in log) == 30
        admissions = [e.time for e in log if e.phase in (PHASE_ARRIVAL, PHASE_PUBLISH)]
        assert 0.0 <= min(admissions) and max(admissions) < 12.0
        assert base.all_worker_ids == tuple(range(40))

    def test_churn_and_cancel_fractions(self):
        _, log = synthetic_stream(
            num_workers=200, num_tasks=200, churn_fraction=0.5,
            cancel_fraction=0.5, seed=5,
        )
        churns = sum(isinstance(e, WorkerChurnEvent) for e in log)
        cancels = sum(isinstance(e, TaskCancelEvent) for e in log)
        assert 50 < churns < 150
        assert 50 < cancels < 150

    def test_deterministic_by_seed(self):
        _, log_a = synthetic_stream(num_workers=20, num_tasks=20, seed=11)
        _, log_b = synthetic_stream(num_workers=20, num_tasks=20, seed=11)
        _, log_c = synthetic_stream(num_workers=20, num_tasks=20, seed=12)
        assert log_a.fingerprint() == log_b.fingerprint()
        assert log_a.fingerprint() != log_c.fingerprint()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            synthetic_stream(num_workers=-1, num_tasks=0)
        with pytest.raises(ValueError):
            synthetic_stream(num_workers=1, num_tasks=1, duration_hours=0.0)
        with pytest.raises(ValueError):
            synthetic_stream(num_workers=1, num_tasks=1, clusters=0)
        with pytest.raises(ValueError):
            synthetic_stream(num_workers=1, num_tasks=1, clusters=2,
                             cluster_gap_km=0.0)

    def test_clusters_are_separated_beyond_reachability(self):
        import numpy as np

        reachable = 8.0
        _, log = synthetic_stream(
            num_workers=60, num_tasks=50, area_km=20.0,
            reachable_km=reachable, clusters=4, seed=13,
        )
        xs = log.columns["x"]
        ys = log.columns["y"]
        located = ~np.isnan(xs)
        points = np.column_stack((xs[located], ys[located]))
        # Label each point by its cluster square (pitch = area + gap).
        pitch = 20.0 + 3.0 * reachable
        labels = (points // pitch).astype(int)
        assert len({tuple(row) for row in labels}) == 4
        for a in range(len(points)):
            for b in range(a + 1, len(points)):
                if tuple(labels[a]) != tuple(labels[b]):
                    assert np.hypot(*(points[a] - points[b])) > reachable

    def test_single_cluster_is_default_draw_identical(self):
        _, explicit = synthetic_stream(num_workers=15, num_tasks=12, seed=21,
                                       clusters=1)
        _, default = synthetic_stream(num_workers=15, num_tasks=12, seed=21)
        assert explicit.fingerprint() == default.fingerprint()


class TestLogInvariantProperties:
    """Property tests over the shared strategies (tests/strategies.py)."""

    @settings(max_examples=30)
    @given(log=event_logs())
    def test_canonical_order_and_rebuild_identity(self, log):
        """Any event mix sorts canonically, and rebuilding a log from its
        own materialized events reproduces columns and fingerprint."""
        key = list(zip(log.times, log.phases, log.entity_ids))
        assert key == sorted(key)
        rebuilt = EventLog(log.events)
        assert rebuilt.fingerprint() == log.fingerprint()
        assert rebuilt.events == log.events

    @settings(max_examples=30)
    @given(log=event_logs())
    def test_worker_rows_always_carry_payloads(self, log):
        """Every arrival/relocation row resolves to a Worker whose id is
        the row's entity, at the row's coordinates."""
        import numpy as np

        for index in np.flatnonzero(
            (log.kinds == 0) | (log.kinds == 5)
        ):
            worker = log.worker_at(int(index))
            assert worker.worker_id == int(log.entity_ids[index])
            assert worker.location.x == log.columns["x"][index]
            assert worker.location.y == log.columns["y"][index]

    @settings(max_examples=30)
    @given(log=event_logs())
    def test_relocation_payload_composes_latest_prior_state(self, log):
        """A relocation's synthesized payload carries the attributes of the
        worker's nearest preceding arrival/relocation row."""
        import numpy as np

        for index in np.flatnonzero(log.kinds == 5):
            worker_id = int(log.entity_ids[index])
            prior = [
                i for i in np.flatnonzero(
                    ((log.kinds == 0) | (log.kinds == 5))
                    & (log.entity_ids == worker_id)
                )
                if i < index
            ]
            assert prior, "log construction must reject orphan relocations"
            previous = log.worker_at(int(prior[-1]))
            relocated = log.worker_at(int(index))
            assert relocated.reachable_km == previous.reachable_km
            assert relocated.speed_kmh == previous.speed_kmh

    @settings(max_examples=15)
    @given(world=stream_worlds(max_workers=40, max_tasks=40, multi_day=True))
    def test_synthetic_worlds_replay_deterministically(self, world):
        """Generated multi-day worlds are self-consistent: replay through a
        fresh log of the same events is fingerprint-identical."""
        _, log = world
        assert EventLog(log.events).fingerprint() == log.fingerprint()


class TestRelocationOrdering:
    def test_same_instant_arrival_and_relocation_order_arrival_first(self):
        """Kind is the final sort key: an arrival and a relocation of the
        same worker at the same time order deterministically (arrival
        first), whichever way the source rows were interleaved."""
        from repro.geo import Point as P

        arrival = WorkerArrivalEvent(time=2.0, worker=make_worker(4))
        move = WorkerRelocateEvent(time=2.0, worker_id=4, location=P(7.0, 7.0))
        forward = EventLog([arrival, move])
        backward = EventLog([move, arrival])
        assert forward.events == backward.events
        assert forward.fingerprint() == backward.fingerprint()
        assert isinstance(forward[0], WorkerArrivalEvent)
        assert forward.worker_at(1).location == P(7.0, 7.0)
