"""Tests for repro.propagation.lt — the Linear Threshold extension."""

import numpy as np
import pytest

from repro.propagation import (
    SocialGraph,
    estimate_spread_lt,
    lt_collection,
    sample_lt_rrr_sets,
    simulate_lt,
)


@pytest.fixture()
def star_graph() -> SocialGraph:
    """Hub 0 connected to leaves 1..5."""
    return SocialGraph(range(6), [(0, i) for i in range(1, 6)])


class TestSimulateLT:
    def test_seed_always_informed(self, line_graph, rng):
        informed = simulate_lt(line_graph, 0, rng)
        assert 0 in informed

    def test_informed_sorted_and_unique(self, star_graph, rng):
        informed = simulate_lt(star_graph, 0, rng)
        assert list(informed) == sorted(set(int(i) for i in informed))

    def test_isolated_seed_spreads_nowhere(self, rng):
        graph = SocialGraph(range(3), [(1, 2)])
        informed = simulate_lt(graph, 0, rng)
        assert list(informed) == [0]

    def test_leaf_with_indegree_one_always_informed_by_hub(self, rng):
        # A leaf in the star has indeg 1 so its single in-arc has weight 1,
        # which meets any threshold in [0, 1): leaves are always informed.
        graph = SocialGraph(range(2), [(0, 1)])
        for _ in range(20):
            informed = simulate_lt(graph, 0, rng)
            assert list(informed) == [0, 1]

    def test_spread_bounded_by_population(self, star_graph, rng):
        for _ in range(10):
            informed = simulate_lt(star_graph, 0, rng)
            assert 1 <= len(informed) <= star_graph.num_workers


class TestEstimateSpreadLT:
    def test_rejects_zero_runs(self, line_graph):
        with pytest.raises(ValueError):
            estimate_spread_lt(line_graph, 0, runs=0)

    def test_deterministic_chain_spread(self):
        # In the path 0-1, worker 1 has indeg 1 -> always informed.
        graph = SocialGraph(range(2), [(0, 1)])
        assert estimate_spread_lt(graph, 0, runs=50) == pytest.approx(2.0)

    def test_spread_reproducible_by_seed(self, star_graph):
        a = estimate_spread_lt(star_graph, 0, runs=200, seed=5)
        b = estimate_spread_lt(star_graph, 0, runs=200, seed=5)
        assert a == b

    def test_hub_spreads_more_than_leaf(self, star_graph):
        hub = estimate_spread_lt(star_graph, 0, runs=400, seed=1)
        leaf = estimate_spread_lt(star_graph, 1, runs=400, seed=1)
        assert hub > leaf


class TestSampleLTRRRSets:
    def test_rejects_negative_count(self, line_graph, rng):
        with pytest.raises(ValueError):
            sample_lt_rrr_sets(line_graph, -1, rng)

    def test_members_sorted_and_contain_root(self, line_graph, rng):
        roots, members = sample_lt_rrr_sets(line_graph, 50, rng)
        for root, member in zip(roots, members):
            assert list(member) == sorted(member)
            assert int(root) in member

    def test_sets_are_walks_not_trees(self, star_graph, rng):
        # LT reverse sets follow a single in-arc per node, so a set rooted
        # at the hub contains the hub plus at most a walk through leaves —
        # from a leaf, the only in-neighbor is the hub, then the walk either
        # cycles back or continues to one other leaf.
        roots, members = sample_lt_rrr_sets(star_graph, 200, rng)
        for member in members:
            assert len(member) <= 3

    def test_collection_roundtrip(self, line_graph):
        collection = lt_collection(line_graph, count=100, seed=9)
        assert len(collection) == 100
        assert collection.coverage_fraction().max() <= 1.0

    def test_spread_estimate_matches_forward_simulation(self):
        """RIS sigma under LT approximates forward Monte-Carlo spread."""
        graph = SocialGraph(range(8), [
            (0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (1, 7),
        ])
        collection = lt_collection(graph, count=30_000, seed=3)
        for seed_worker in (0, 2, 5):
            ris = collection.sigma(seed_worker)
            forward = estimate_spread_lt(graph, seed_worker, runs=6000, seed=17)
            assert ris == pytest.approx(forward, rel=0.12), (seed_worker, ris, forward)
