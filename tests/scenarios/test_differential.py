"""The cross-engine scenario differential matrix.

For every scenario class in :mod:`tests.scenarios.generators` this module
asserts the three equivalences the streaming stack claims, bit for bit:

1. **Cross-engine** — ``StreamRuntime`` under a window trigger reproduces
   the batched ``OnlineSimulator`` on the scenario's simulator view
   (pairs, per-round assigned/expired/churned counts, pool sizes).  The
   rush-hour scenario asserts this *with relocations included* (mapped to
   re-arrivals — see the generator docstring for why that is exact).
2. **Sharded == unsharded** — across shard counts, assigners and
   executor backends, on the full scenario log (relocations, churn,
   cancellations and all).
3. **Pipelined == serial** — the overlapped executor and latency-driven
   shard rebalancing change wall-clock behaviour only: pairs, round
   records and wait distributions stay bit-identical across the same
   scenario / assigner / backend matrix.
4. **Checkpoint/resume** — a v4 checkpoint taken mid-stream (mid-
   relocation wave where the scenario has one) resumes event-for-event
   identically, admission-control state included.
5. **Observability on == off** — full telemetry (live registry + tracer)
   reads values the runtime already computed and nothing else: pairs,
   round records and wait distributions stay bit-identical across the
   scenario matrix and every executor backend.

Plus the admission-control contract: disabled (or never-overloaded)
admission control is a provable no-op, and the defer/shed policies behave
as documented under a deterministic cost signal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment import (
    EIAAssigner,
    IAAssigner,
    MIAssigner,
    MTAAssigner,
    NearestNeighborAssigner,
)
from repro.framework import OnlineSimulator
from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    render_prometheus,
    validate_exposition,
    validate_trace_events,
)
from repro.stream import (
    AdmissionController,
    SegmentedEventLog,
    ShardRebalancer,
    StreamRuntime,
    TimeWindowTrigger,
)
from repro.stream.events import KIND_PUBLISH, KIND_RELOCATE

from tests.scenarios.generators import SCENARIOS, DistanceLexAssigner


def pairs(result):
    return sorted(
        (p.worker.worker_id, p.task.task_id) for p in result.assignment.pairs
    )


def round_rows(result):
    """Per-round records minus the wall-clock timing field."""
    return [
        (r.index, r.time, r.online_workers, r.open_tasks, r.drained_events,
         r.assigned, r.expired_tasks, r.churned_workers, r.cancelled_tasks,
         r.relocated_workers, r.deferred_tasks, r.shed_tasks)
        for r in result.rounds
    ]


def wait_profile(result):
    """Order-independent wait-distribution state for cross-engine compares.

    ``total`` is excluded on purpose: engines retire pairs in different
    orders, and float addition order can shift its last ulp.
    """
    return [
        (hist.count, hist.counts.tolist(), hist.min_seen, hist.max_seen)
        for hist in (
            result.metrics.task_wait_histogram,
            result.metrics.worker_wait_histogram,
        )
    ]


def make_runtime(scenario, assigner, *, log=None, **kwargs):
    return StreamRuntime(
        assigner, None, TimeWindowTrigger(scenario.batch_hours),
        scenario.base, scenario.log if log is None else log,
        patience_hours=scenario.patience_hours, **kwargs,
    )


def run_stream(scenario, assigner, *, log=None, **kwargs):
    runtime = make_runtime(scenario, assigner, log=log, **kwargs)
    try:
        return runtime.run()
    finally:
        runtime.close()


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def scenario(request):
    return SCENARIOS[request.param]()


@pytest.fixture(scope="module")
def nn_reference(scenario):
    """The unsharded, ungated NearestNeighbor run of the full log."""
    return run_stream(scenario, NearestNeighborAssigner())


class TestCrossEngine:
    """StreamRuntime(TimeWindowTrigger) == OnlineSimulator, per scenario."""

    @pytest.mark.parametrize("assigner_cls", [NearestNeighborAssigner, MTAAssigner])
    def test_matches_online_simulator(self, scenario, assigner_cls):
        online = OnlineSimulator(
            assigner_cls(), None, batch_hours=scenario.batch_hours,
            patience_hours=scenario.patience_hours,
        ).run(scenario.base.with_tasks(scenario.sim_tasks), scenario.sim_arrivals)
        streamed = run_stream(scenario, assigner_cls(), log=scenario.sim_log)

        assert online.total_assigned > 0, "degenerate scenario assigns nothing"
        assert pairs(online) == pairs(streamed)
        assert [s.time for s in online.steps] == [r.time for r in streamed.rounds]
        assert [s.assigned for s in online.steps] == [
            r.assigned for r in streamed.rounds
        ]
        assert [s.expired_tasks for s in online.steps] == [
            r.expired_tasks for r in streamed.rounds
        ]
        assert [s.churned_workers for s in online.steps] == [
            r.churned_workers for r in streamed.rounds
        ]
        assert [s.online_workers for s in online.steps] == [
            r.online_workers for r in streamed.rounds
        ]
        assert [s.open_tasks for s in online.steps] == [
            r.open_tasks for r in streamed.rounds
        ]

    def test_rush_hour_equivalence_includes_relocations(self):
        """The relocation wave itself is covered by the simulator claim."""
        scenario = SCENARIOS["rush_hour_relocation"]()
        assert scenario.sim_log is scenario.log
        assert int((scenario.log.kinds == KIND_RELOCATE).sum()) > 5
        streamed = run_stream(scenario, NearestNeighborAssigner())
        assert streamed.metrics.total_relocated == int(
            (scenario.log.kinds == KIND_RELOCATE).sum()
        )


class TestShardedUnsharded:
    """Sharded == unsharded, bit for bit, on the full scenario logs."""

    def test_across_shard_counts(self, scenario, nn_reference):
        for shards in scenario.shard_counts:
            sharded = run_stream(
                scenario, NearestNeighborAssigner(), shards=shards
            )
            assert pairs(sharded) == pairs(nn_reference), f"shards={shards}"
            assert round_rows(sharded) == round_rows(nn_reference)
            assert wait_profile(sharded) == wait_profile(nn_reference)

    @pytest.mark.parametrize("assigner_cls", [
        IAAssigner, MTAAssigner, EIAAssigner, MIAssigner,
    ])
    def test_all_assigners_on_decomposable_worlds(self, assigner_cls):
        for name in ("multi_city", "mass_relocation"):
            scenario = SCENARIOS[name]()
            plain = run_stream(scenario, assigner_cls())
            sharded = run_stream(
                scenario, assigner_cls(), shards=scenario.shard_counts[-1]
            )
            assert plain.total_assigned > 0
            assert pairs(sharded) == pairs(plain), name
            assert round_rows(sharded) == round_rows(plain), name

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_executor_backends(self, backend):
        scenario = SCENARIOS["mass_relocation"]()
        plain = run_stream(scenario, NearestNeighborAssigner())
        sharded = run_stream(
            scenario, NearestNeighborAssigner(), shards=4, executor=backend
        )
        assert pairs(sharded) == pairs(plain)
        assert round_rows(sharded) == round_rows(plain)

    def test_relocated_positions_are_planned_cells(self):
        """The layout refresh rule: relocation targets are planning inputs,
        so every position the pools can ever hold maps to a planned cell."""
        from repro.stream import ShardLayout

        scenario = SCENARIOS["mass_relocation"]()
        layout = ShardLayout.plan(scenario.log, 5)
        assert layout.covers(scenario.log)

    def test_never_splits_feasible_pairs_after_relocation(self):
        """No relocated worker may end up sharded away from a reachable
        task — the never-split invariant judged at *relocated* positions."""
        from repro.stream import ShardLayout

        scenario = SCENARIOS["mass_relocation"]()
        log = scenario.log
        layout = ShardLayout.plan(log, 5)
        tasks = [log.task_at(int(i))
                 for i in np.flatnonzero(log.kinds == KIND_PUBLISH)]
        for index in np.flatnonzero(log.kinds == KIND_RELOCATE):
            worker = log.worker_at(int(index))
            shard = layout.shard_of(worker.location)
            for task in tasks:
                if worker.location.distance_to(task.location) <= worker.reachable_km:
                    assert layout.shard_of(task.location) == shard


def eager_rebalancer():
    """A rebalancer that repacks as often as the hysteresis gate allows,
    fed by a deterministic latency signal (entity counts, not wall time)."""
    return ShardRebalancer(
        interval=2, hysteresis=0.0, latency_of=lambda shard, n, seconds: float(n)
    )


class TestPipelinedSerial:
    """Pipelining and rebalancing change wall clock only — never output."""

    def test_all_scenarios_pipelined_thread(self, scenario, nn_reference):
        shards = scenario.shard_counts[-1]
        pipelined = run_stream(
            scenario, NearestNeighborAssigner(), shards=shards,
            executor="thread", pipeline=True,
        )
        assert pairs(pipelined) == pairs(nn_reference)
        assert round_rows(pipelined) == round_rows(nn_reference)
        assert wait_profile(pipelined) == wait_profile(nn_reference)

    @pytest.mark.parametrize("assigner_cls", [
        IAAssigner, MTAAssigner, EIAAssigner, MIAssigner,
    ])
    def test_all_assigners_pipelined(self, assigner_cls):
        for name in ("multi_city", "mass_relocation"):
            scenario = SCENARIOS[name]()
            shards = scenario.shard_counts[-1]
            serial = run_stream(scenario, assigner_cls(), shards=shards)
            pipelined = run_stream(
                scenario, assigner_cls(), shards=shards,
                executor="thread", pipeline=True,
            )
            assert pairs(pipelined) == pairs(serial), name
            assert round_rows(pipelined) == round_rows(serial), name

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_executor_backends_pipelined(self, backend):
        scenario = SCENARIOS["mass_relocation"]()
        plain = run_stream(scenario, NearestNeighborAssigner())
        pipelined = run_stream(
            scenario, NearestNeighborAssigner(), shards=4,
            executor=backend, pipeline=True,
        )
        assert pairs(pipelined) == pairs(plain)
        assert round_rows(pipelined) == round_rows(plain)

    def test_rebalancing_is_assignment_equivalent(self, scenario, nn_reference):
        shards = scenario.shard_counts[-1]
        rebalanced = run_stream(
            scenario, NearestNeighborAssigner(), shards=shards,
            rebalance=eager_rebalancer(),
        )
        assert pairs(rebalanced) == pairs(nn_reference)
        assert round_rows(rebalanced) == round_rows(nn_reference)
        assert wait_profile(rebalanced) == wait_profile(nn_reference)

    def test_pipelined_rebalancing_full_stack(self):
        scenario = SCENARIOS["rush_hour_relocation"]()
        plain = run_stream(scenario, NearestNeighborAssigner())
        stacked = run_stream(
            scenario, NearestNeighborAssigner(), shards=scenario.shard_counts[-1],
            executor="thread", pipeline=True, rebalance=eager_rebalancer(),
        )
        assert pairs(stacked) == pairs(plain)
        assert round_rows(stacked) == round_rows(plain)


def full_obs():
    """Every telemetry sink live: a real registry plus a real tracer."""
    return Observability(registry=MetricsRegistry(), tracer=Tracer())


class TestObservabilityDifferential:
    """Telemetry on vs off is bit-identical — obs only reads results."""

    def test_all_scenarios_unsharded(self, scenario, nn_reference):
        obs = full_obs()
        observed = run_stream(scenario, NearestNeighborAssigner(), obs=obs)
        assert pairs(observed) == pairs(nn_reference)
        assert round_rows(observed) == round_rows(nn_reference)
        assert wait_profile(observed) == wait_profile(nn_reference)
        # The sinks were live, not silently disconnected.
        names = {family.name for family in obs.registry.families()}
        assert "repro_stream_rounds_total" in names
        assert any(event["name"] == "round" for event in obs.tracer.events())

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_executor_backends_sharded(self, backend):
        scenario = SCENARIOS["mass_relocation"]()
        plain = run_stream(
            scenario, NearestNeighborAssigner(), shards=4, executor=backend
        )
        obs = full_obs()
        observed = run_stream(
            scenario, NearestNeighborAssigner(), shards=4, executor=backend,
            obs=obs,
        )
        assert pairs(observed) == pairs(plain)
        assert round_rows(observed) == round_rows(plain)
        assert wait_profile(observed) == wait_profile(plain)
        assert any(
            event["name"] == "shard.solve" for event in obs.tracer.events()
        ), backend

    def test_pipelined_rebalanced_full_stack_emits_valid_telemetry(self):
        scenario = SCENARIOS["rush_hour_relocation"]()
        shards = scenario.shard_counts[-1]
        kwargs = dict(
            shards=shards, executor="thread", pipeline=True,
        )
        plain = run_stream(
            scenario, NearestNeighborAssigner(),
            rebalance=eager_rebalancer(), **kwargs,
        )
        obs = full_obs()
        observed = run_stream(
            scenario, NearestNeighborAssigner(),
            rebalance=eager_rebalancer(), obs=obs, **kwargs,
        )
        assert pairs(observed) == pairs(plain)
        assert round_rows(observed) == round_rows(plain)
        # And what came out the other end is well-formed: the trace passes
        # the trace-event schema, the registry renders valid exposition.
        span_names = {event["name"] for event in obs.tracer.events()}
        assert {"round", "round.drain", "shard.prepare", "shard.solve",
                "round.merge"} <= span_names
        validate_trace_events(obs.tracer.to_payload())
        validate_exposition(render_prometheus(obs.registry))


class TestWarmDifferential:
    """Warm-started solves are a pure accelerator: identical output.

    The probe assigner prices edges by raw distance, whose continuous
    values make the per-round optimum unique — so these differentials pin
    pair-level bit-identity, not just the objective value the flow layer
    already guarantees.
    """

    def test_all_scenarios_unsharded(self, scenario):
        cold = run_stream(scenario, DistanceLexAssigner())
        warm = run_stream(scenario, DistanceLexAssigner(), warm=True)
        assert cold.total_assigned > 0
        assert pairs(warm) == pairs(cold)
        assert round_rows(warm) == round_rows(cold)
        assert wait_profile(warm) == wait_profile(cold)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_sharded_backends_through_relocation_waves(self, backend, pipeline):
        """mass_relocation fires invalidation mid-stream on every backend."""
        scenario = SCENARIOS["mass_relocation"]()
        assert scenario.has_relocations
        cold = run_stream(scenario, DistanceLexAssigner())
        warm = run_stream(
            scenario, DistanceLexAssigner(), shards=4,
            executor=backend, pipeline=pipeline, warm=True,
        )
        assert pairs(warm) == pairs(cold)
        assert round_rows(warm) == round_rows(cold)

    def test_warm_with_rebalancing_and_observability(self):
        """The full stack — warm + repacks + live telemetry — stays pinned."""
        scenario = SCENARIOS["rush_hour_relocation"]()
        shards = scenario.shard_counts[-1]
        plain = run_stream(scenario, DistanceLexAssigner())
        obs = full_obs()
        stacked = run_stream(
            scenario, DistanceLexAssigner(), shards=shards,
            executor="thread", pipeline=True, rebalance=eager_rebalancer(),
            warm=True, obs=obs,
        )
        assert pairs(stacked) == pairs(plain)
        assert round_rows(stacked) == round_rows(plain)
        names = {family.name for family in obs.registry.families()}
        assert "repro_stream_solve_augmentations" in names
        assert "repro_stream_warm_hit" in names
        validate_trace_events(obs.tracer.to_payload())
        validate_exposition(render_prometheus(obs.registry))


def segmented_log(scenario, segment_hours=6.0, **kwargs):
    segmented = SegmentedEventLog.from_log(
        scenario.log, segment_hours=segment_hours, **kwargs
    )
    assert segmented.segment_count >= 2, "scenario too short to segment"
    return segmented


class TestSegmentedMaterialized:
    """Segmented replay == materialized replay, bit for bit.

    The bounded-memory event-log segments claim: windowing the horizon
    changes *when slabs exist in memory*, never what replays — pairs,
    per-round records and wait distributions stay identical across the
    scenario matrix, every assigner and every executor backend.
    """

    def test_all_scenarios_unsharded(self, scenario, nn_reference):
        streamed = run_stream(
            scenario, NearestNeighborAssigner(), log=segmented_log(scenario)
        )
        assert pairs(streamed) == pairs(nn_reference)
        assert round_rows(streamed) == round_rows(nn_reference)
        assert wait_profile(streamed) == wait_profile(nn_reference)

    @pytest.mark.parametrize("assigner_cls", [
        IAAssigner, MTAAssigner, EIAAssigner, MIAssigner,
    ])
    def test_all_assigners_sharded(self, assigner_cls):
        for name in ("multi_city", "mass_relocation"):
            scenario = SCENARIOS[name]()
            plain = run_stream(scenario, assigner_cls())
            streamed = run_stream(
                scenario, assigner_cls(), log=segmented_log(scenario),
                shards=scenario.shard_counts[-1],
            )
            assert pairs(streamed) == pairs(plain), name
            assert round_rows(streamed) == round_rows(plain), name

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_executor_backends(self, backend, pipeline):
        scenario = SCENARIOS["mass_relocation"]()
        plain = run_stream(scenario, NearestNeighborAssigner())
        streamed = run_stream(
            scenario, NearestNeighborAssigner(), log=segmented_log(scenario),
            shards=4, executor=backend, pipeline=pipeline,
        )
        assert pairs(streamed) == pairs(plain)
        assert round_rows(streamed) == round_rows(plain)
        assert wait_profile(streamed) == wait_profile(plain)

    def test_admission_backlog_positions_cross_seams(self):
        """Defer-parked backlog entries carry *global* cursor positions, so
        a storm parked in one segment releases identically after the seam."""
        scenario = SCENARIOS["quiet_then_burst"]()
        controller = lambda: AdmissionController(  # noqa: E731
            10.0, "defer", cost_of=storm_cost
        )
        reference = run_stream(
            scenario, NearestNeighborAssigner(), admission=controller()
        )
        assert reference.metrics.total_deferred > 0
        streamed = run_stream(
            scenario, NearestNeighborAssigner(),
            log=segmented_log(scenario), admission=controller(),
        )
        assert pairs(streamed) == pairs(reference)
        assert round_rows(streamed) == round_rows(reference)

    def test_checkpoint_resume_mid_segment(self, tmp_path):
        """A checkpoint whose cursor sits strictly inside a middle segment
        resumes bit-identically against a *freshly built* segmented log."""
        scenario = SCENARIOS["mass_relocation"]()
        segmented = segmented_log(scenario)
        full = run_stream(
            scenario, NearestNeighborAssigner(), log=segmented, shards=4
        )
        interrupted = make_runtime(
            scenario, NearestNeighborAssigner(), log=segmented, shards=4
        )
        interrupted.run(max_rounds=mid_relocation_round(full, scenario.log))
        segment, offset = segmented.locate(interrupted.cursor)
        assert 0 < segment < segmented.segment_count - 1
        assert offset > 0, "cursor must land strictly inside the segment"
        saved = interrupted.checkpoint(tmp_path / "segmented.npz")
        interrupted.close()
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None,
            TimeWindowTrigger(scenario.batch_hours), scenario.base,
            segmented_log(scenario),
            patience_hours=scenario.patience_hours, shards=4,
        ).run()
        assert pairs(resumed) == pairs(full)
        assert round_rows(resumed) == round_rows(full)

    def test_resume_refuses_the_wrong_mode_or_partition(self, tmp_path):
        from repro.exceptions import DataError

        scenario = SCENARIOS["mass_relocation"]()
        interrupted = make_runtime(
            scenario, NearestNeighborAssigner(), log=segmented_log(scenario)
        )
        interrupted.run(max_rounds=2)
        saved = interrupted.checkpoint(tmp_path / "seg.npz")
        interrupted.close()
        resume_args = (
            saved, NearestNeighborAssigner(), None,
            TimeWindowTrigger(scenario.batch_hours), scenario.base,
        )
        with pytest.raises(DataError, match="materialized"):
            StreamRuntime.resume(
                *resume_args, scenario.log,
                patience_hours=scenario.patience_hours,
            )
        with pytest.raises(DataError, match="segment 0"):
            StreamRuntime.resume(
                *resume_args, segmented_log(scenario, segment_hours=12.0),
                patience_hours=scenario.patience_hours,
            )


def mid_relocation_round(full_result, log) -> int:
    """A round count whose cursor lands inside the relocation window."""
    relocations = log.times[log.kinds == KIND_RELOCATE]
    times = [r.time for r in full_result.rounds]
    if len(relocations):
        first, last = float(relocations.min()), float(relocations.max())
        for index, when in enumerate(times):
            if first <= when < last:
                return index + 1
    return max(1, len(times) // 2)


class TestCheckpointResume:
    """v4 checkpoints resume event-for-event identically, mid-relocation."""

    def test_resume_matches_uninterrupted(self, scenario, nn_reference, tmp_path):
        stop_after = mid_relocation_round(nn_reference, scenario.log)
        interrupted = make_runtime(scenario, NearestNeighborAssigner())
        interrupted.run(max_rounds=stop_after)
        if scenario.has_relocations:
            consumed = int(
                (scenario.log.kinds[: interrupted.cursor] == KIND_RELOCATE).sum()
            )
            total = int((scenario.log.kinds == KIND_RELOCATE).sum())
            assert 0 < consumed < total, "checkpoint must land mid-relocation"
        saved = interrupted.checkpoint(tmp_path / f"{scenario.name}.npz")
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None,
            TimeWindowTrigger(scenario.batch_hours), scenario.base, scenario.log,
            patience_hours=scenario.patience_hours,
        ).run()
        assert pairs(resumed) == pairs(nn_reference)
        assert round_rows(resumed) == round_rows(nn_reference)

    def test_sharded_resume_with_admission(self, tmp_path):
        """The full stack at once: shards + admission + relocations across a
        checkpoint boundary."""
        scenario = SCENARIOS["mass_relocation"]()
        cost = lambda record: float(record.open_tasks)  # noqa: E731

        def controller():
            return AdmissionController(
                budget_seconds=12.0, policy="defer", cost_of=cost
            )

        full = run_stream(
            scenario, NearestNeighborAssigner(), shards=4,
            admission=controller(),
        )
        interrupted = make_runtime(
            scenario, NearestNeighborAssigner(), shards=4,
            admission=controller(),
        )
        interrupted.run(max_rounds=mid_relocation_round(full, scenario.log))
        saved = interrupted.checkpoint(tmp_path / "stack.npz")
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None,
            TimeWindowTrigger(scenario.batch_hours), scenario.base, scenario.log,
            patience_hours=scenario.patience_hours, shards=4,
            admission=controller(),
        ).run()
        assert pairs(resumed) == pairs(full)
        assert round_rows(resumed) == round_rows(full)

    def test_pipelined_rebalanced_resume(self, tmp_path):
        """A v4 checkpoint taken mid-pipeline — overlapped executor and
        rebalancer EWMA state live — resumes event-for-event identically."""
        scenario = SCENARIOS["mass_relocation"]()
        kwargs = dict(shards=4, executor="thread", pipeline=True)
        full = run_stream(
            scenario, NearestNeighborAssigner(),
            rebalance=eager_rebalancer(), **kwargs,
        )
        interrupted = make_runtime(
            scenario, NearestNeighborAssigner(),
            rebalance=eager_rebalancer(), **kwargs,
        )
        try:
            interrupted.run(max_rounds=mid_relocation_round(full, scenario.log))
            saved = interrupted.checkpoint(tmp_path / "pipelined.npz")
        finally:
            interrupted.close()
        with StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None,
            TimeWindowTrigger(scenario.batch_hours), scenario.base, scenario.log,
            patience_hours=scenario.patience_hours,
            rebalance=eager_rebalancer(), **kwargs,
        ) as runtime:
            resumed = runtime.run()
        assert pairs(resumed) == pairs(full)
        assert round_rows(resumed) == round_rows(full)


class TestAdmissionControl:
    """Off by default and a no-op when disabled; defer/shed as documented."""

    def test_disabled_admission_is_noop(self, scenario, nn_reference):
        """A controller that never overloads produces bit-identical output
        to a runtime with no controller at all (the default)."""
        never = AdmissionController(
            budget_seconds=1e9, cost_of=lambda record: float(record.open_tasks)
        )
        gated = run_stream(scenario, NearestNeighborAssigner(), admission=never)
        assert pairs(gated) == pairs(nn_reference)
        assert round_rows(gated) == round_rows(nn_reference)
        assert gated.metrics.total_deferred == 0
        assert gated.metrics.total_shed == 0

    def test_defer_parks_then_recovers(self):
        scenario = SCENARIOS["quiet_then_burst"]()
        cost = lambda record: float(record.open_tasks)  # noqa: E731
        controller = AdmissionController(10.0, "defer", cost_of=cost)
        runtime = make_runtime(
            scenario, NearestNeighborAssigner(), admission=controller
        )
        deferred = runtime.run()
        assert deferred.metrics.total_deferred > 0
        assert deferred.metrics.total_shed == 0
        assert any(r.deferred_tasks > 0 for r in deferred.rounds)
        # Defer never drops work: the backlog is empty once the stream ends
        # (the final flush force-releases it) and every publish is either
        # assigned, expired, cancelled, or still open in the pool — exactly
        # the ungated accounting.
        assert controller.backlog_size == 0
        publishes = int((scenario.log.kinds == KIND_PUBLISH).sum())
        accounted = (
            deferred.total_assigned + deferred.total_expired
            + deferred.total_cancelled + runtime.state.num_open_tasks
        )
        assert accounted == publishes

    def test_shed_drops_and_records(self):
        scenario = SCENARIOS["quiet_then_burst"]()
        cost = lambda record: float(record.open_tasks)  # noqa: E731
        runtime = make_runtime(
            scenario, NearestNeighborAssigner(),
            admission=AdmissionController(10.0, "shed", cost_of=cost),
        )
        shed = runtime.run()
        assert shed.metrics.total_shed > 0
        assert shed.metrics.total_deferred == 0
        assert any(r.shed_tasks > 0 for r in shed.rounds)
        assert shed.summary().shed_rate > 0.0
        # Shed work is gone for good; everything else follows the ungated
        # accounting (assigned, expired, cancelled, or still open).
        publishes = int((scenario.log.kinds == KIND_PUBLISH).sum())
        accounted = (
            shed.total_assigned + shed.total_expired + shed.total_cancelled
            + shed.metrics.total_shed + runtime.state.num_open_tasks
        )
        assert accounted == publishes

    def test_defer_beats_shed_on_served_volume(self):
        scenario = SCENARIOS["quiet_then_burst"]()
        cost = lambda record: float(record.open_tasks)  # noqa: E731
        deferred = run_stream(
            scenario, NearestNeighborAssigner(),
            admission=AdmissionController(10.0, "defer", cost_of=cost),
        )
        shed = run_stream(
            scenario, NearestNeighborAssigner(),
            admission=AdmissionController(10.0, "shed", cost_of=cost),
        )
        assert deferred.total_assigned >= shed.total_assigned

    def test_deterministic_under_fixed_cost_signal(self):
        scenario = SCENARIOS["quiet_then_burst"]()
        cost = lambda record: float(record.open_tasks)  # noqa: E731
        runs = [
            run_stream(
                scenario, NearestNeighborAssigner(),
                admission=AdmissionController(10.0, "defer", cost_of=cost),
            )
            for _ in range(2)
        ]
        assert pairs(runs[0]) == pairs(runs[1])
        assert round_rows(runs[0]) == round_rows(runs[1])

    def test_protected_tasks_bypass_the_gate(self):
        scenario = SCENARIOS["quiet_then_burst"]()
        cost = lambda record: float(record.open_tasks)  # noqa: E731
        protected = run_stream(
            scenario, NearestNeighborAssigner(),
            admission=AdmissionController(
                10.0, "shed", cost_of=cost,
                value_of=lambda task: float(task.task_id),
                protect_value=0.0,  # every task's value >= 0 -> all protected
            ),
        )
        assert protected.metrics.total_shed == 0


class RecordingController(AdmissionController):
    """Records which parked tasks were discarded by an expiry/cancel drain."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.discarded: list[int] = []

    def discard(self, task_id):
        was_parked = super().discard(task_id)
        if was_parked:
            self.discarded.append(task_id)
        return was_parked


def storm_cost(record):
    """Deterministic overload covering the quiet_then_burst publish burst.

    The burst publishes inside 10h-12h with 3h validity, so parking the
    whole burst until 14h guarantees part of the backlog out-lives its
    deadline *inside* the backlog (expiry events drain at 13h-14h while
    the tasks are still parked) and the rest is released with deadlines
    imminent or just passed.
    """
    return 20.0 if 10.0 <= record.time < 14.0 else 0.0


class TestDeferredExpiryInBacklog:
    """Defer-parked tasks whose lifetime ends in the backlog stay dead."""

    BUDGET = 10.0

    def _controller(self, cls=AdmissionController):
        return cls(self.BUDGET, "defer", cost_of=storm_cost)

    def test_no_expired_task_resurrected(self):
        scenario = SCENARIOS["quiet_then_burst"]()
        controller = self._controller(RecordingController)
        runtime = make_runtime(
            scenario, NearestNeighborAssigner(), admission=controller
        )
        result = runtime.run()

        assert result.metrics.total_deferred > 0, "storm parked nothing"
        assert controller.discarded, "no parked task expired in the backlog"
        # The load-bearing claim: a task that died while parked is never
        # assigned afterwards — not by the release path, not by the final
        # flush.
        assigned_ids = {p.task.task_id for p in result.assignment.pairs}
        assert not assigned_ids & set(controller.discarded)
        # And it is not dropped either: defer conserves every publish.
        publishes = int((scenario.log.kinds == KIND_PUBLISH).sum())
        accounted = (
            result.total_assigned + result.total_expired
            + result.total_cancelled + runtime.state.num_open_tasks
        )
        assert accounted == publishes
        assert controller.backlog_size == 0

    def test_released_tasks_never_solved_past_deadline(self):
        """A parked task released at or after its deadline expires in the
        same round's sweep — the solver never even sees it."""

        class AuditingAssigner(NearestNeighborAssigner):
            def __init__(self):
                super().__init__()
                self.solved: list[tuple[float, int]] = []

            def assign(self, prepared):
                assignment = super().assign(prepared)
                now = prepared.instance.current_time
                self.solved.extend(
                    (now, pair.task.task_id) for pair in assignment.pairs
                )
                return assignment

        scenario = SCENARIOS["quiet_then_burst"]()
        assigner = AuditingAssigner()
        runtime = make_runtime(
            scenario, assigner, admission=self._controller(RecordingController)
        )
        result = runtime.run()
        assert result.metrics.total_deferred > 0
        assert assigner.solved
        deadline_of = {
            task.task_id: task.publication_time + task.valid_hours
            for task in scenario.sim_tasks
        }
        for solve_time, task_id in assigner.solved:
            assert solve_time <= deadline_of[task_id], (
                f"task {task_id} assigned at t={solve_time} after its "
                f"deadline {deadline_of[task_id]}"
            )

    def test_cross_engine_identical_under_backlog_expiry(self):
        """The differential: unsharded == sharded on every backend, with
        the backlog-expiry storm active — no engine resurrects a task."""
        scenario = SCENARIOS["quiet_then_burst"]()
        reference = run_stream(
            scenario, NearestNeighborAssigner(), admission=self._controller()
        )
        assert reference.metrics.total_deferred > 0
        for backend in ("serial", "thread", "process"):
            sharded = run_stream(
                scenario, NearestNeighborAssigner(),
                admission=self._controller(), shards=2, executor=backend,
            )
            assert pairs(sharded) == pairs(reference), backend
            assert round_rows(sharded) == round_rows(reference), backend
