"""Scenario generators for the cross-engine differential matrix.

Each scenario class models a workload shape the streaming runtime must
serve — dense single-city load, multi-city clusters, a rush-hour burst
preceded by a relocation wave, mass multi-day migration, and churn-heavy
days — as a :class:`Scenario`: the event log to stream plus the
*simulator view*, the :class:`~repro.framework.online.OnlineSimulator`
expression of the same workload.

Equivalence contracts
---------------------
Every scenario claims, and ``test_differential.py`` asserts:

* ``StreamRuntime(TimeWindowTrigger(batch_hours))`` on ``sim_log`` is
  **bit-identical** to ``OnlineSimulator(batch_hours)`` on
  ``sim_arrivals``/``sim_tasks`` — pairs, per-round assigned counts and
  pool sizes;
* sharded == unsharded on the full ``log``, for every assigner and
  backend exercised;
* a v3 checkpoint taken mid-stream (mid-relocation where the scenario has
  relocations) resumes event-for-event identically;
* admission control disabled (or configured but never overloaded) is a
  no-op.

For scenarios whose full log is simulator-expressible, ``sim_log is
log``.  The rush-hour scenario goes further: its relocations all happen
**before the first task publication**, when every arrived worker is
provably still pooled (rounds assign nothing without open tasks and
patience is off), so a relocation is observationally a re-arrival — the
simulator view maps each relocation to a ``WorkerArrival`` of the moved
worker and the equivalence holds *with relocations included*.  The
mass-relocation and churn-event scenarios claim the simulator equivalence
on their arrival/publish/expiry projection (the other event kinds are
outside the simulator's model); their relocation/churn behaviour is
pinned by the stream-side differentials instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.framework.online import WorkerArrival
from repro.geo import Point
from repro.stream import (
    EventLog,
    TaskPublishEvent,
    WorkerArrivalEvent,
    WorkerRelocateEvent,
    expiry_events,
    log_from_arrivals,
    synthetic_stream,
)
from repro.assignment.base import PreparedInstance
from repro.assignment.lexico import LexicographicCostAssigner
from repro.stream.events import KIND_ARRIVAL, KIND_PUBLISH, KIND_RELOCATE


class DistanceLexAssigner(LexicographicCostAssigner):
    """Lexicographic matching over raw distances — tie-free by construction.

    The influence-based assigners can price many edges identically (IA with
    no social graph costs every edge 1.0), which makes *which* optimal
    matching the solver returns degenerate.  Continuous pairwise distances
    from the synthetic generators are distinct almost surely, so this
    assigner has a unique optimum per round — the right probe for warm-vs-
    cold differentials that assert pair-level (not just objective-level)
    bit-identity across the scenario matrix.  Module-level so the process
    backend can pickle it.
    """

    name = "DistLex"

    def edge_costs(self, prepared: PreparedInstance) -> np.ndarray:
        return prepared.feasible.distance_km


@dataclass
class Scenario:
    """One workload shape plus its cross-engine equivalence mapping."""

    name: str
    base: SCInstance
    log: EventLog
    batch_hours: float
    sim_log: EventLog
    sim_arrivals: list[WorkerArrival]
    sim_tasks: list[Task]
    patience_hours: float | None = None
    shard_counts: tuple[int, ...] = (2, 4)
    has_relocations: bool = field(init=False)

    def __post_init__(self) -> None:
        self.has_relocations = bool(
            (self.log.kinds == KIND_RELOCATE).sum()
        )


def _arrivals_of(log: EventLog) -> list[WorkerArrival]:
    return [
        WorkerArrival(worker=log.worker_at(int(i)), arrival_time=float(log.times[i]))
        for i in np.flatnonzero(log.kinds == KIND_ARRIVAL)
    ]


def _tasks_of(log: EventLog) -> list[Task]:
    return [log.task_at(int(i)) for i in np.flatnonzero(log.kinds == KIND_PUBLISH)]


def _projected(scenario_log: EventLog) -> tuple[EventLog, list, list]:
    """The arrival/publish/expiry projection of a log (simulator view)."""
    arrivals = _arrivals_of(scenario_log)
    tasks = _tasks_of(scenario_log)
    return log_from_arrivals(arrivals, tasks), arrivals, tasks


def dense_blob() -> Scenario:
    """One dense city: everything reachable, rounds never decompose."""
    base, log = synthetic_stream(
        num_workers=45, num_tasks=50, duration_hours=24.0, area_km=30.0,
        valid_hours=4.0, reachable_km=20.0, seed=101,
    )
    return Scenario(
        name="dense_blob", base=base, log=log, batch_hours=1.0,
        sim_log=log, sim_arrivals=_arrivals_of(log), sim_tasks=_tasks_of(log),
        shard_counts=(1, 4),
    )


def multi_city() -> Scenario:
    """Four separated cities — the decomposable world sharding exploits."""
    base, log = synthetic_stream(
        num_workers=60, num_tasks=70, duration_hours=24.0, area_km=15.0,
        valid_hours=4.0, reachable_km=6.0, clusters=4, seed=103,
    )
    return Scenario(
        name="multi_city", base=base, log=log, batch_hours=1.0,
        sim_log=log, sim_arrivals=_arrivals_of(log), sim_tasks=_tasks_of(log),
        shard_counts=(2, 4, 7),
    )


def rush_hour_relocation() -> Scenario:
    """Overnight arrivals, a morning relocation wave, then a task burst.

    All relocations land in ``[2, 4)`` while the first task publishes at
    ``t >= 4``: no round before the burst has open tasks, so no worker can
    have been assigned when it relocates — every relocation applies to a
    pooled worker and is observationally a re-arrival.  The simulator view
    therefore keeps the relocations, mapped to ``WorkerArrival`` entries
    of the moved workers, and the cross-engine equivalence is claimed for
    the *full* scenario.
    """
    rng = np.random.default_rng(105)
    count = 40
    events = []
    sim_arrivals = []
    workers = []
    for worker_id in range(count):
        home = Point(float(rng.uniform(0, 25)), float(rng.uniform(0, 25)))
        worker = Worker(worker_id=worker_id, location=home, reachable_km=8.0)
        workers.append(worker)
        arrival = float(rng.uniform(0.0, 2.0))
        events.append(WorkerArrivalEvent(time=arrival, worker=worker))
        sim_arrivals.append(WorkerArrival(worker=worker, arrival_time=arrival))
    # The morning wave: 60% of workers converge on the city centre.
    for worker_id in range(count):
        if rng.random() < 0.6:
            target = Point(float(rng.uniform(8, 17)), float(rng.uniform(8, 17)))
            when = float(rng.uniform(2.0, 4.0))
            events.append(WorkerRelocateEvent(
                time=when, worker_id=worker_id, location=target,
            ))
            sim_arrivals.append(WorkerArrival(
                worker=workers[worker_id].moved_to(target), arrival_time=when,
            ))
    tasks = []
    for task_id in range(50):
        tasks.append(Task(
            task_id=task_id,
            location=Point(float(rng.uniform(5, 20)), float(rng.uniform(5, 20))),
            publication_time=float(rng.uniform(4.0, 6.0)),
            valid_hours=3.0,
        ))
    events.extend(TaskPublishEvent(time=t.publication_time, task=t) for t in tasks)
    events.extend(expiry_events(tasks))
    log = EventLog(events)
    base = SCInstance(
        name="rush-hour", current_time=0.0, tasks=[], workers=[],
        histories={}, social_edges=[], all_worker_ids=tuple(range(count)),
    )
    return Scenario(
        name="rush_hour_relocation", base=base, log=log, batch_hours=0.5,
        sim_log=log, sim_arrivals=sim_arrivals, sim_tasks=tasks,
        shard_counts=(1, 3),
    )


def mass_relocation() -> Scenario:
    """Three 8-hour days; 60% of live workers migrate across cities at
    every day boundary (``relocate_span="world"``), 15% churn overnight.
    Mid-stream relocations can target already-assigned workers (no-ops),
    so the simulator view is the arrival/publish/expiry projection."""
    base, log = synthetic_stream(
        num_workers=55, num_tasks=65, duration_hours=8.0, days=3,
        area_km=12.0, valid_hours=3.0, reachable_km=5.0, clusters=3,
        relocate_fraction=0.6, overnight_churn_fraction=0.15,
        relocate_span="world", seed=107,
    )
    sim_log, sim_arrivals, sim_tasks = _projected(log)
    return Scenario(
        name="mass_relocation", base=base, log=log, batch_hours=1.0,
        sim_log=sim_log, sim_arrivals=sim_arrivals, sim_tasks=sim_tasks,
        shard_counts=(2, 5),
    )


def churn_heavy() -> Scenario:
    """Aggressive worker churn and task cancellation.

    Patience-based churn is simulator-expressible, so the simulator view
    keeps the full arrival/publish/expiry stream and both engines run with
    the same ``patience_hours``; the explicit churn/cancel events are
    exercised by the stream-side differentials.
    """
    base, log = synthetic_stream(
        num_workers=50, num_tasks=60, duration_hours=24.0, area_km=20.0,
        valid_hours=4.0, reachable_km=8.0, clusters=2,
        churn_fraction=0.35, cancel_fraction=0.2, seed=109,
    )
    sim_log, sim_arrivals, sim_tasks = _projected(log)
    return Scenario(
        name="churn_heavy", base=base, log=log, batch_hours=1.0,
        sim_log=sim_log, sim_arrivals=sim_arrivals, sim_tasks=sim_tasks,
        patience_hours=3.0, shard_counts=(2, 4),
    )


def quiet_then_burst() -> Scenario:
    """A near-idle morning, then everything publishes inside two hours —
    the admission-control stress shape (rounds suddenly 10x the load)."""
    rng = np.random.default_rng(111)
    count = 45
    events = []
    sim_arrivals = []
    for worker_id in range(count):
        worker = Worker(
            worker_id=worker_id,
            location=Point(float(rng.uniform(0, 18)), float(rng.uniform(0, 18))),
            reachable_km=10.0,
        )
        arrival = float(rng.uniform(0.0, 10.0))
        events.append(WorkerArrivalEvent(time=arrival, worker=worker))
        sim_arrivals.append(WorkerArrival(worker=worker, arrival_time=arrival))
    tasks = []
    for task_id in range(55):
        burst = rng.random() < 0.85
        tasks.append(Task(
            task_id=task_id,
            location=Point(float(rng.uniform(0, 18)), float(rng.uniform(0, 18))),
            publication_time=float(
                rng.uniform(10.0, 12.0) if burst else rng.uniform(0.0, 10.0)
            ),
            valid_hours=3.0,
        ))
    events.extend(TaskPublishEvent(time=t.publication_time, task=t) for t in tasks)
    events.extend(expiry_events(tasks))
    log = EventLog(events)
    base = SCInstance(
        name="quiet-burst", current_time=0.0, tasks=[], workers=[],
        histories={}, social_edges=[], all_worker_ids=tuple(range(count)),
    )
    return Scenario(
        name="quiet_then_burst", base=base, log=log, batch_hours=0.5,
        sim_log=log, sim_arrivals=sim_arrivals, sim_tasks=tasks,
        shard_counts=(1, 2),
    )


#: The scenario matrix, by name (≥ 5 classes — the acceptance floor).
SCENARIOS = {
    factory.__name__: factory
    for factory in (
        dense_blob,
        multi_city,
        rush_hour_relocation,
        mass_relocation,
        churn_heavy,
        quiet_then_burst,
    )
}
