"""Multi-day replay: builders, relocation semantics, and engine parity.

``multi_day_stream`` is the dataset-backed multi-day builder (arrive on
the first active day, relocate on later active days, churn overnight when
gone); ``synthetic_stream(days=...)`` is its synthetic counterpart.  Both
feed the same runtime, so the differentials here pin the multi-day shapes
against the single-day builders and the batched simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment import IAAssigner, NearestNeighborAssigner
from repro.exceptions import DataError
from repro.framework import OnlineSimulator
from repro.stream import (
    StreamRuntime,
    TimeWindowTrigger,
    day_stream,
    multi_day_stream,
    synthetic_stream,
)
from repro.stream.events import (
    KIND_ARRIVAL,
    KIND_CHURN,
    KIND_PUBLISH,
    KIND_RELOCATE,
)

from tests.scenarios.test_differential import pairs, round_rows


DAYS = [5, 6, 7]


@pytest.fixture(scope="module")
def multiday(tiny_dataset):
    return multi_day_stream(tiny_dataset, DAYS)


class TestMultiDayBuilder:
    def test_single_day_matches_day_stream(self, tiny_dataset):
        """A one-day horizon is exactly the single-day builder's log
        (modulo the sequential task renumbering)."""
        single_instance, single_log = day_stream(tiny_dataset, 6)
        multi_instance, multi_log = multi_day_stream(tiny_dataset, [6])
        assert len(multi_log) == len(single_log)
        assert np.array_equal(multi_log.times, single_log.times)
        assert np.array_equal(multi_log.kinds, single_log.kinds)
        assert len(multi_instance.tasks) == len(single_instance.tasks)
        # Renumbered ids are 0..n-1 but the venues/locations line up.
        singles = sorted(single_instance.tasks, key=lambda t: t.task_id)
        multis = sorted(multi_instance.tasks, key=lambda t: t.task_id)
        assert [t.venue_id for t in multis] == [t.venue_id for t in singles]
        assert [t.location for t in multis] == [t.location for t in singles]

    def test_repeat_actives_relocate_not_rearrive(self, tiny_dataset, multiday):
        _, log = multiday
        arrivals = log.entity_ids[log.kinds == KIND_ARRIVAL]
        relocations = log.entity_ids[log.kinds == KIND_RELOCATE]
        assert len(relocations) > 0, "no repeat-active workers across days"
        # Each worker arrives exactly once; every later active day is a
        # relocation or follows an overnight churn (then re-arrival).
        from repro.framework import day_arrivals

        per_day = [
            {a.worker.worker_id for a in day_arrivals(tiny_dataset, d)}
            for d in DAYS
        ]
        both = per_day[0] & per_day[1]
        reloc_times = log.times[log.kinds == KIND_RELOCATE]
        day1_window = (reloc_times >= 24.0 * DAYS[1]) & (
            reloc_times < 24.0 * (DAYS[1] + 1)
        )
        assert set(relocations[day1_window]) <= both

    def test_overnight_churn_at_boundaries(self, tiny_dataset, multiday):
        _, log = multiday
        churns = np.flatnonzero(log.kinds == KIND_CHURN)
        assert len(churns) > 0, "nobody left between days"
        boundaries = {24.0 * d for d in DAYS[1:]}
        assert {float(log.times[i]) for i in churns} <= boundaries

    def test_task_ids_unique_across_days(self, multiday):
        instance, log = multiday
        ids = [t.task_id for t in instance.tasks]
        assert len(ids) == len(set(ids))
        publishes = log.entity_ids[log.kinds == KIND_PUBLISH]
        assert len(publishes) == len(set(publishes.tolist())) == len(ids)

    def test_relocated_payloads_track_day_locations(self, tiny_dataset, multiday):
        """Each relocation's synthesized payload sits at that day's
        builder location for the worker."""
        from repro.data import InstanceBuilder

        _, log = multiday
        builder = InstanceBuilder(tiny_dataset)
        for index in np.flatnonzero(log.kinds == KIND_RELOCATE)[:10]:
            worker = log.worker_at(int(index))
            day = int(log.times[index] // 24.0)
            expected = builder.worker_location_at(worker.worker_id, 24.0 * day)
            if expected is not None:
                assert worker.location == expected

    def test_rejects_bad_day_lists(self, tiny_dataset):
        with pytest.raises(DataError, match="at least one day"):
            multi_day_stream(tiny_dataset, [])
        with pytest.raises(DataError, match="strictly increasing"):
            multi_day_stream(tiny_dataset, [7, 6])
        with pytest.raises(DataError, match="strictly increasing"):
            multi_day_stream(tiny_dataset, [6, 6])


class TestMultiDayEngineParity:
    def test_sharded_matches_unsharded_on_fitted_days(self, multiday):
        base, log = multiday
        plain = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
        ).run()
        runtime = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
            shards=4, shard_cell_km=5.0,
        )
        sharded = runtime.run()
        assert plain.total_assigned > 0
        assert pairs(sharded) == pairs(plain)
        assert round_rows(sharded) == round_rows(plain)

    def test_relocation_free_horizon_matches_online_simulator(self):
        """A multi-day synthetic horizon without relocation/churn is fully
        simulator-expressible: one continuous run across day boundaries."""
        base, log = synthetic_stream(
            num_workers=40, num_tasks=50, duration_hours=8.0, days=3,
            area_km=20.0, valid_hours=3.0, reachable_km=8.0, seed=211,
        )
        from tests.scenarios.generators import _arrivals_of, _tasks_of

        arrivals = _arrivals_of(log)
        tasks = _tasks_of(log)
        online = OnlineSimulator(IAAssigner(), None, batch_hours=1.0).run(
            base.with_tasks(tasks), arrivals
        )
        streamed = StreamRuntime(
            IAAssigner(), None, TimeWindowTrigger(1.0), base, log,
        ).run()
        assert online.total_assigned > 0
        assert pairs(online) == pairs(streamed)
        assert [s.assigned for s in online.steps] == [
            r.assigned for r in streamed.rounds
        ]

    def test_checkpoint_mid_overnight_relocation(self, multiday, tmp_path):
        base, log = multiday
        full = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
        ).run()
        reloc_times = log.times[log.kinds == KIND_RELOCATE]
        first_boundary = float(reloc_times.min())
        stop_after = next(
            i + 1 for i, r in enumerate(full.rounds) if r.time >= first_boundary
        )
        interrupted = StreamRuntime(
            NearestNeighborAssigner(), None, TimeWindowTrigger(2.0), base, log,
        )
        interrupted.run(max_rounds=stop_after)
        consumed = int((log.kinds[: interrupted.cursor] == KIND_RELOCATE).sum())
        assert 0 < consumed < len(reloc_times)
        saved = interrupted.checkpoint(tmp_path / "multiday.npz")
        resumed = StreamRuntime.resume(
            saved, NearestNeighborAssigner(), None, TimeWindowTrigger(2.0),
            base, log,
        ).run()
        assert pairs(resumed) == pairs(full)
        assert round_rows(resumed) == round_rows(full)


class TestSyntheticMultiDayProperties:
    def test_relocations_only_at_boundaries(self):
        _, log = synthetic_stream(
            num_workers=50, num_tasks=10, duration_hours=6.0, days=4,
            relocate_fraction=0.7, seed=31,
        )
        reloc_times = log.times[log.kinds == KIND_RELOCATE]
        assert len(reloc_times) > 0
        assert set(np.unique(reloc_times)) <= {6.0, 12.0, 18.0}

    def test_churned_workers_stop_relocating(self):
        _, log = synthetic_stream(
            num_workers=80, num_tasks=10, duration_hours=6.0, days=5,
            relocate_fraction=0.5, overnight_churn_fraction=0.5, seed=37,
        )
        churn_time = {}
        for index in np.flatnonzero(log.kinds == KIND_CHURN):
            worker = int(log.entity_ids[index])
            churn_time.setdefault(worker, float(log.times[index]))
        for index in np.flatnonzero(log.kinds == KIND_RELOCATE):
            worker = int(log.entity_ids[index])
            if worker in churn_time:
                assert float(log.times[index]) < churn_time[worker]

    def test_cluster_span_keeps_workers_in_their_city(self):
        reachable = 5.0
        _, log = synthetic_stream(
            num_workers=40, num_tasks=10, duration_hours=6.0, days=3,
            area_km=10.0, reachable_km=reachable, clusters=4,
            relocate_fraction=0.8, relocate_span="cluster", seed=41,
        )
        pitch = 10.0 + 3.0 * reachable
        for index in np.flatnonzero(log.kinds == KIND_RELOCATE):
            worker_id = int(log.entity_ids[index])
            arrival_rows = np.flatnonzero(
                (log.kinds == KIND_ARRIVAL) & (log.entity_ids == worker_id)
            )
            home = log.worker_at(int(arrival_rows[0])).location
            moved = log.worker_at(int(index)).location
            assert int(home.x // pitch) == int(moved.x // pitch)
            assert int(home.y // pitch) == int(moved.y // pitch)

    def test_world_span_crosses_cities(self):
        _, log = synthetic_stream(
            num_workers=60, num_tasks=10, duration_hours=6.0, days=3,
            area_km=10.0, reachable_km=5.0, clusters=4,
            relocate_fraction=0.9, relocate_span="world", seed=43,
        )
        pitch = 10.0 + 15.0
        crossed = 0
        for index in np.flatnonzero(log.kinds == KIND_RELOCATE):
            worker_id = int(log.entity_ids[index])
            arrival_rows = np.flatnonzero(
                (log.kinds == KIND_ARRIVAL) & (log.entity_ids == worker_id)
            )
            home = log.worker_at(int(arrival_rows[0])).location
            moved = log.worker_at(int(index)).location
            if (int(home.x // pitch), int(home.y // pitch)) != (
                int(moved.x // pitch), int(moved.y // pitch)
            ):
                crossed += 1
        assert crossed > 0

    def test_single_day_is_draw_identical_to_legacy(self):
        _, legacy = synthetic_stream(num_workers=20, num_tasks=15, seed=53)
        _, explicit = synthetic_stream(
            num_workers=20, num_tasks=15, days=1, relocate_fraction=0.0,
            overnight_churn_fraction=0.0, seed=53,
        )
        assert legacy.fingerprint() == explicit.fingerprint()

    def test_rejects_bad_multi_day_parameters(self):
        with pytest.raises(ValueError, match="days"):
            synthetic_stream(num_workers=1, num_tasks=1, days=0)
        with pytest.raises(ValueError, match="relocate_fraction"):
            synthetic_stream(num_workers=1, num_tasks=1, days=2,
                             relocate_fraction=1.5)
        with pytest.raises(ValueError, match="overnight_churn_fraction"):
            synthetic_stream(num_workers=1, num_tasks=1, days=2,
                             overnight_churn_fraction=-0.1)
        with pytest.raises(ValueError, match="exceed 1"):
            synthetic_stream(num_workers=1, num_tasks=1, days=2,
                             relocate_fraction=0.7,
                             overnight_churn_fraction=0.7)
        with pytest.raises(ValueError, match="relocate_span"):
            synthetic_stream(num_workers=1, num_tasks=1, days=2,
                             relocate_span="galaxy")
