"""Tests for repro.geo.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import Point

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPointBasics:
    def test_distance_to_pythagorean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -7.0)
        assert p.distance_to(p) == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(10, 4)) == Point(5, 2)

    def test_as_tuple_and_iter(self):
        p = Point(1.5, 2.5)
        assert p.as_tuple() == (1.5, 2.5)
        assert list(p) == [1.5, 2.5]

    def test_origin(self):
        assert Point.origin() == Point(0.0, 0.0)

    def test_hashable_and_usable_as_key(self):
        d = {Point(1, 2): "a", Point(1, 3): "b"}
        assert d[Point(1, 2)] == "a"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5.0  # type: ignore[misc]


class TestPointProperties:
    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite)
    def test_distance_non_negative(self, x1, y1, x2, y2):
        assert Point(x1, y1).distance_to(Point(x2, y2)) >= 0.0

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(finite, finite, finite, finite)
    def test_midpoint_equidistant(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        m = a.midpoint(b)
        assert a.distance_to(m) == pytest.approx(b.distance_to(m), abs=1e-6)

    @given(finite, finite, finite, finite)
    def test_translate_preserves_distance_to_translated(self, x, y, dx, dy):
        a = Point(x, y)
        b = a.translated(dx, dy)
        assert a.distance_to(b) == pytest.approx(math.hypot(dx, dy), rel=1e-9, abs=1e-9)
