"""Tests for repro.affinity.tfidf — the lexical affinity baseline."""

import numpy as np
import pytest

from repro.affinity import AffinityModel, TfidfAffinity
from repro.entities import Task
from repro.exceptions import NotFittedError
from repro.geo import Point


def make_task(categories, task_id=0):
    return Task(
        task_id=task_id,
        location=Point(0.0, 0.0),
        publication_time=0.0,
        valid_hours=5.0,
        categories=tuple(categories),
    )


@pytest.fixture()
def histories(history_factory):
    return {
        1: history_factory(1, [
            (0, 0, 0, ["cafe", "cafe", "bar"]),
            (1, 1, 1, ["cafe"]),
        ]),
        2: history_factory(2, [
            (0, 0, 0, ["gym", "park"]),
            (1, 1, 1, ["gym"]),
        ]),
        3: history_factory(3, [
            (0, 0, 0, ["cafe", "gym"]),
        ]),
    }


class TestTfidfAffinity:
    def test_unfitted_raises(self):
        model = TfidfAffinity()
        with pytest.raises(NotFittedError):
            model.affinity(1, make_task(["cafe"]))
        with pytest.raises(NotFittedError):
            _ = model.vocabulary_size

    def test_all_empty_histories_rejected(self, history_factory):
        empty = {1: history_factory(1, [])}
        with pytest.raises(NotFittedError):
            TfidfAffinity().fit(empty)

    def test_vocabulary(self, histories):
        model = TfidfAffinity().fit(histories)
        assert model.vocabulary_size == 4  # bar cafe gym park

    def test_affinity_in_unit_interval(self, histories):
        model = TfidfAffinity().fit(histories)
        for worker in (1, 2, 3):
            for categories in (["cafe"], ["gym", "park"], ["bar", "cafe"]):
                value = model.affinity(worker, make_task(categories))
                assert 0.0 <= value <= 1.0 + 1e-12

    def test_matching_categories_beat_disjoint(self, histories):
        model = TfidfAffinity().fit(histories)
        cafe_task = make_task(["cafe"])
        assert model.affinity(1, cafe_task) > model.affinity(2, cafe_task)

    def test_disjoint_categories_zero(self, histories):
        """No smoothing across categories — the deficiency LDA fixes."""
        model = TfidfAffinity().fit(histories)
        assert model.affinity(2, make_task(["bar"])) == pytest.approx(0.0)

    def test_identical_document_gives_unit_cosine(self, history_factory):
        histories = {1: history_factory(1, [(0, 0, 0, ["cafe", "bar"])])}
        model = TfidfAffinity().fit(histories)
        assert model.affinity(1, make_task(["cafe", "bar"])) == pytest.approx(1.0)

    def test_unknown_worker_zero_vector(self, histories):
        model = TfidfAffinity().fit(histories)
        assert model.affinity(99, make_task(["cafe"])) == 0.0

    def test_unknown_category_ignored(self, histories):
        model = TfidfAffinity().fit(histories)
        mixed = model.affinity(1, make_task(["cafe", "opera"]))
        pure = model.affinity(1, make_task(["cafe"]))
        assert mixed > 0.0
        assert mixed <= pure + 1e-12

    def test_affinity_matrix_matches_pairwise(self, histories):
        model = TfidfAffinity().fit(histories)
        tasks = [make_task(["cafe"], 0), make_task(["gym", "park"], 1)]
        matrix = model.affinity_matrix([1, 2, 3], tasks)
        assert matrix.shape == (3, 2)
        for i, worker in enumerate([1, 2, 3]):
            for j, task in enumerate(tasks):
                assert matrix[i, j] == pytest.approx(model.affinity(worker, task))

    def test_empty_matrix_inputs(self, histories):
        model = TfidfAffinity().fit(histories)
        assert model.affinity_matrix([], []).shape == (0, 0)

    def test_interface_matches_lda_model(self, histories):
        """The pipeline-facing surface must match AffinityModel."""
        for method in ("fit", "affinity", "affinity_matrix"):
            assert hasattr(TfidfAffinity, method)
            assert hasattr(AffinityModel, method)

    def test_rare_category_outweighs_common_one(self, history_factory):
        # "cafe" appears in every document, "opera" in one; a worker with
        # both should match an opera task more strongly than a cafe task.
        histories = {
            1: history_factory(1, [(0, 0, 0, ["cafe", "opera"])]),
            2: history_factory(2, [(0, 0, 0, ["cafe", "bar"])]),
            3: history_factory(3, [(0, 0, 0, ["cafe", "gym"])]),
        }
        model = TfidfAffinity().fit(histories)
        assert model.affinity(1, make_task(["opera"])) > model.affinity(
            1, make_task(["cafe"])
        )
