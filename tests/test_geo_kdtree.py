"""Tests for repro.geo.kdtree."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import KDTree, Point


def make_tree(coords):
    return KDTree([(Point(x, y), i) for i, (x, y) in enumerate(coords)])


# 32-bit floats keep squared distances representable in float64, so the
# squared-comparison pruning of the tree agrees exactly with hypot-based
# distances (tiny 64-bit values like 9e-289 underflow when squared).
coordinate = st.floats(-50, 50, width=32).map(float)


class TestKDTreeBasics:
    def test_empty_tree(self):
        tree = KDTree([])
        assert len(tree) == 0
        assert list(tree.query_radius(Point(0, 0), 10.0)) == []

    def test_empty_tree_nearest_raises(self):
        with pytest.raises(ValueError):
            KDTree([]).nearest(Point(0, 0))

    def test_rejects_negative_radius(self):
        tree = make_tree([(0.0, 0.0)])
        with pytest.raises(ValueError):
            list(tree.query_radius(Point(0, 0), -1.0))

    def test_single_point(self):
        tree = make_tree([(1.0, 2.0)])
        assert len(tree) == 1
        hits = list(tree.query_radius(Point(0, 0), 3.0))
        assert [item for _, item in hits] == [0]

    def test_query_radius_includes_border(self):
        tree = make_tree([(3.0, 0.0)])
        hits = list(tree.query_radius(Point(0, 0), 3.0))
        assert [item for _, item in hits] == [0]

    def test_query_radius_excludes_outside(self):
        tree = make_tree([(3.01, 0.0)])
        assert list(tree.query_radius(Point(0, 0), 3.0)) == []

    def test_zero_radius_hits_exact_point(self):
        tree = make_tree([(1.0, 1.0), (2.0, 2.0)])
        hits = list(tree.query_radius(Point(1.0, 1.0), 0.0))
        assert [item for _, item in hits] == [0]

    def test_items_returns_everything(self):
        coords = [(float(i), float(-i)) for i in range(20)]
        tree = make_tree(coords)
        assert sorted(item for _, item in tree.items()) == list(range(20))

    def test_duplicate_points_all_reported(self):
        tree = KDTree([(Point(1.0, 1.0), "a"), (Point(1.0, 1.0), "b")])
        hits = {item for _, item in tree.query_radius(Point(1, 1), 0.5)}
        assert hits == {"a", "b"}

    def test_deep_tree_beyond_leaf_size(self):
        # 100 collinear points force many splits along one axis.
        coords = [(float(i), 0.0) for i in range(100)]
        tree = make_tree(coords)
        hits = {item for _, item in tree.query_radius(Point(50.0, 0.0), 5.0)}
        assert hits == set(range(45, 56))


class TestKDTreeNearest:
    def test_nearest_trivial(self):
        tree = make_tree([(0.0, 0.0), (10.0, 10.0)])
        point, item = tree.nearest(Point(1.0, 1.0))
        assert item == 0
        assert point == Point(0.0, 0.0)

    def test_nearest_exact_hit(self):
        tree = make_tree([(5.0, 5.0), (6.0, 6.0)])
        _, item = tree.nearest(Point(6.0, 6.0))
        assert item == 1

    @settings(max_examples=50)
    @given(
        st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=60),
        coordinate, coordinate,
    )
    def test_nearest_matches_brute_force(self, coords, cx, cy):
        tree = make_tree(coords)
        center = Point(cx, cy)
        _, item = tree.nearest(center)
        best = min(
            math.dist((x, y), (cx, cy)) for x, y in coords
        )
        got = math.dist(coords[item], (cx, cy))
        assert got == pytest.approx(best)


class TestKDTreeAgainstBruteForce:
    @settings(max_examples=60)
    @given(
        st.lists(st.tuples(coordinate, coordinate), min_size=0, max_size=80),
        coordinate, coordinate, st.floats(0, 40, width=32).map(float),
    )
    def test_radius_query_matches_brute_force(self, coords, cx, cy, radius):
        tree = make_tree(coords)
        center = Point(cx, cy)
        expected = {
            i for i, (x, y) in enumerate(coords)
            if Point(x, y).distance_to(center) <= radius
        }
        got = {item for _, item in tree.query_radius(center, radius)}
        assert got == expected

    @settings(max_examples=20)
    @given(st.integers(1, 500))
    def test_full_radius_returns_all(self, n):
        coords = [(float(i % 23), float(i % 7)) for i in range(n)]
        tree = make_tree(coords)
        got = {item for _, item in tree.query_radius(Point(10.0, 3.0), 1000.0)}
        assert got == set(range(n))
