"""Tests for the social propagation graph."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.propagation import SocialGraph


class TestSocialGraph:
    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            SocialGraph([], [])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            SocialGraph([0, 1], [(0, 0)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(GraphError):
            SocialGraph([0, 1], [(0, 5)])

    def test_duplicate_edges_collapsed(self):
        graph = SocialGraph([0, 1], [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 2  # one undirected edge = two arcs

    def test_degrees_on_path(self, line_graph):
        # Path 0-1-2-3: degrees 1,2,2,1.
        np.testing.assert_array_equal(line_graph.in_degree, [1, 2, 2, 1])

    def test_inform_probability_is_inverse_indegree(self, line_graph):
        np.testing.assert_allclose(
            line_graph.inform_probability, [1.0, 0.5, 0.5, 1.0]
        )

    def test_isolated_worker_allowed(self):
        graph = SocialGraph([0, 1, 2], [(0, 1)])
        assert graph.num_workers == 3
        assert graph.in_degree[graph.index_of(2)] == 0
        assert graph.inform_probability[graph.index_of(2)] == 0.0

    def test_neighbors_symmetric_for_undirected_input(self, line_graph):
        i1 = line_graph.index_of(1)
        out_n = set(line_graph.out_neighbors(i1).tolist())
        in_n = set(line_graph.in_neighbors(i1).tolist())
        assert out_n == in_n == {line_graph.index_of(0), line_graph.index_of(2)}

    def test_index_mapping_roundtrip(self):
        graph = SocialGraph([10, 20, 30], [(10, 30)])
        for worker_id in (10, 20, 30):
            assert graph.worker_at(graph.index_of(worker_id)) == worker_id

    def test_unknown_worker_index_raises(self, line_graph):
        with pytest.raises(GraphError):
            line_graph.index_of(999)

    def test_degree_histogram(self, line_graph):
        assert line_graph.degree_histogram() == {1: 2, 2: 2}

    def test_neighbors_sorted(self):
        graph = SocialGraph(range(5), [(2, 4), (2, 0), (2, 3)])
        i2 = graph.index_of(2)
        neighbors = graph.out_neighbors(i2).tolist()
        assert neighbors == sorted(neighbors)
