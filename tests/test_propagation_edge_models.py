"""Tests for the alternative arc-probability models of SocialGraph."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.propagation import (
    RRRCollection,
    SocialGraph,
    estimate_informed_probabilities,
    sample_rrr_sets,
    simulate_ic,
    simulate_lt,
)
from repro.propagation.graph import TRIVALENCY_VALUES


EDGES = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]


def graph_with(model, seed=0):
    return SocialGraph(range(4), EDGES, edge_probability=model, seed=seed)


class TestModelValidation:
    def test_default_is_indegree(self):
        graph = SocialGraph(range(3), [(0, 1)])
        assert graph.edge_probability == "indegree"

    def test_unknown_model_rejected(self):
        with pytest.raises(GraphError):
            graph_with("wc")

    def test_uniform_probability_bounds(self):
        with pytest.raises(GraphError):
            graph_with(("uniform", 0.0))
        with pytest.raises(GraphError):
            graph_with(("uniform", 1.5))
        graph_with(("uniform", 1.0))  # boundary accepted


class TestArcProbabilityViews:
    def test_indegree_in_arcs_match_inform_probability(self):
        graph = graph_with("indegree")
        for node in range(graph.num_workers):
            probs = graph.in_arc_probs(node)
            assert np.allclose(probs, graph.inform_probability[node])
            assert len(probs) == len(graph.in_neighbors(node))

    def test_uniform_all_arcs_equal(self):
        graph = graph_with(("uniform", 0.3))
        for node in range(graph.num_workers):
            assert np.allclose(graph.in_arc_probs(node), 0.3)
            assert np.allclose(graph.out_arc_probs(node), 0.3)

    def test_trivalency_values_from_menu(self):
        graph = graph_with("trivalency", seed=5)
        for node in range(graph.num_workers):
            for p in graph.in_arc_probs(node):
                assert float(p) in TRIVALENCY_VALUES

    def test_in_and_out_views_consistent(self):
        """P(u -> v) must be identical whether read from u's out-list or
        v's in-list."""
        graph = graph_with("trivalency", seed=9)
        for v in range(graph.num_workers):
            in_neighbors = graph.in_neighbors(v)
            in_probs = graph.in_arc_probs(v)
            for u, p in zip(in_neighbors, in_probs):
                out_neighbors = graph.out_neighbors(int(u))
                out_probs = graph.out_arc_probs(int(u))
                position = list(out_neighbors).index(v)
                assert out_probs[position] == pytest.approx(float(p))

    def test_trivalency_deterministic_by_seed(self):
        a = graph_with("trivalency", seed=3)
        b = graph_with("trivalency", seed=3)
        c = graph_with("trivalency", seed=4)
        assert np.array_equal(a._in_arc_probs, b._in_arc_probs)
        assert not np.array_equal(a._in_arc_probs, c._in_arc_probs)


class TestSamplingUnderModels:
    @pytest.mark.parametrize("model", [("uniform", 0.2), "trivalency"])
    def test_ic_and_lt_run(self, model):
        graph = graph_with(model, seed=1)
        rng = np.random.default_rng(0)
        informed_ic = simulate_ic(graph, 0, rng)
        informed_lt = simulate_lt(graph, 0, rng)
        assert 0 in informed_ic
        assert 0 in informed_lt

    def test_uniform_low_p_spreads_less_than_high_p(self):
        rng_low = np.random.default_rng(1)
        rng_high = np.random.default_rng(1)
        low = graph_with(("uniform", 0.05))
        high = graph_with(("uniform", 0.95))
        sizes_low = sum(len(simulate_ic(low, 0, rng_low)) for _ in range(300))
        sizes_high = sum(len(simulate_ic(high, 0, rng_high)) for _ in range(300))
        assert sizes_high > sizes_low

    def test_rrr_estimate_matches_monte_carlo_uniform(self):
        """Lemma 2 holds for any arc-probability model; verify under the
        uniform model on a small graph."""
        graph = SocialGraph(
            range(6),
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 3), (1, 4)],
            edge_probability=("uniform", 0.3),
        )
        rng = np.random.default_rng(7)
        collection = RRRCollection(num_workers=6)
        roots, members = sample_rrr_sets(graph, 40_000, rng)
        collection.extend(roots, members)
        source = 0
        mc = estimate_informed_probabilities(graph, source, runs=8000, seed=3)
        for target in range(1, 6):
            rrr_estimate = collection.ppro(source, target)
            assert rrr_estimate == pytest.approx(mc[target], abs=0.05), target

    def test_lt_walk_can_stop_early_under_subunit_weights(self):
        """With sum of in-weights < 1 some LT walks take the 'no live
        in-arc' branch, so singleton sets must appear."""
        graph = graph_with(("uniform", 0.05), seed=2)
        rng = np.random.default_rng(0)
        from repro.propagation import sample_lt_rrr_sets

        _, members = sample_lt_rrr_sets(graph, 500, rng)
        assert any(len(m) == 1 for m in members)
