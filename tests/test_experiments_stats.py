"""Tests for repro.experiments.stats — bootstrap summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.stats import (
    METRIC_FIELDS,
    ConfidenceInterval,
    bootstrap_ci,
    paired_bootstrap_delta,
    summarize_runs,
)
from repro.framework.metrics import MetricsResult


class TestBootstrapCI:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=0.0)

    def test_bad_resamples_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)

    def test_single_observation_degenerate(self):
        ci = bootstrap_ci([3.5])
        assert ci.mean == ci.lower == ci.upper == 3.5
        assert ci.halfwidth == 0.0

    def test_constant_sample_zero_width(self):
        ci = bootstrap_ci([2.0, 2.0, 2.0, 2.0])
        assert ci.lower == ci.upper == 2.0

    def test_interval_contains_mean(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(10.0, 2.0, size=20)
        ci = bootstrap_ci(sample, seed=4)
        assert ci.lower <= ci.mean <= ci.upper

    def test_deterministic_given_seed(self):
        sample = [1.0, 4.0, 2.0, 8.0]
        assert bootstrap_ci(sample, seed=9) == bootstrap_ci(sample, seed=9)

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = bootstrap_ci(rng.normal(0, 1, 5), seed=1)
        large = bootstrap_ci(rng.normal(0, 1, 200), seed=1)
        assert large.halfwidth < small.halfwidth

    @settings(max_examples=25)
    @given(st.lists(st.floats(-100, 100, width=32).map(float), min_size=2, max_size=30))
    def test_interval_within_sample_range(self, sample):
        ci = bootstrap_ci(sample, seed=0)
        assert min(sample) - 1e-9 <= ci.lower
        assert ci.upper <= max(sample) + 1e-9

    def test_str_format(self):
        text = str(bootstrap_ci([1.0, 2.0, 3.0], seed=0))
        assert "[" in text and "]" in text


class TestPairedBootstrapDelta:
    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap_delta([1.0, 2.0], [1.0])

    def test_clear_winner_significant(self):
        a = [5.0, 6.0, 5.5, 5.8, 6.1]
        b = [1.0, 1.2, 0.9, 1.1, 1.0]
        delta = paired_bootstrap_delta(a, b, seed=3)
        assert delta.mean_delta > 0
        assert delta.significant
        assert delta.probability_positive == 1.0

    def test_identical_samples_not_significant(self):
        a = [1.0, 2.0, 3.0]
        delta = paired_bootstrap_delta(a, a, seed=3)
        assert delta.mean_delta == 0.0
        assert not delta.significant

    def test_pairing_cancels_day_effects(self):
        """A constant per-day offset shared by both algorithms must not
        widen the delta interval."""
        rng = np.random.default_rng(5)
        day_effect = rng.normal(0, 50, size=10)
        a = day_effect + 2.0
        b = day_effect + 1.0
        delta = paired_bootstrap_delta(a, b, seed=6)
        assert delta.mean_delta == pytest.approx(1.0)
        assert delta.significant

    def test_single_pair(self):
        delta = paired_bootstrap_delta([2.0], [1.0])
        assert delta.mean_delta == 1.0
        assert delta.probability_positive == 1.0


class TestSummarizeRuns:
    @staticmethod
    def record(algorithm, ai):
        return MetricsResult(
            algorithm=algorithm,
            num_assigned=10,
            average_influence=ai,
            average_propagation=1.0,
            average_travel_km=5.0,
        )

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs({}, "accuracy")

    def test_per_algorithm_summary(self):
        per_day = {
            "IA": [self.record("IA", 0.8), self.record("IA", 0.9)],
            "MTA": [self.record("MTA", 0.2), self.record("MTA", 0.3)],
        }
        summary = summarize_runs(per_day, "average_influence", seed=1)
        assert set(summary) == {"IA", "MTA"}
        assert isinstance(summary["IA"], ConfidenceInterval)
        assert summary["IA"].mean == pytest.approx(0.85)
        assert summary["MTA"].mean == pytest.approx(0.25)

    def test_all_metric_fields_supported(self):
        per_day = {"IA": [self.record("IA", 0.5)]}
        for metric in METRIC_FIELDS:
            summary = summarize_runs(per_day, metric)
            assert "IA" in summary
