"""End-to-end tests for per-worker travel speeds.

The paper assumes a common 5 km/h speed "for the sake of simplicity" but
notes the algorithms also address workers moving at different speeds; these
tests exercise that claim through feasibility, candidates, assignment and
the online simulator.
"""

import numpy as np
import pytest

from repro.assignment import (
    MTAAssigner,
    PreparedInstance,
    candidate_pairs,
    compute_feasible,
)
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.framework import OnlineSimulator, WorkerArrival
from repro.geo import Point


def worker(worker_id, x, y, speed, radius=100.0):
    return Worker(
        worker_id=worker_id,
        location=Point(x, y),
        reachable_km=radius,
        speed_kmh=speed,
    )


def task(task_id, x, y, phi):
    return Task(
        task_id=task_id, location=Point(x, y), publication_time=0.0, valid_hours=phi
    )


def instance_of(workers, tasks, t=0.0):
    return SCInstance(
        name="speed-test",
        current_time=t,
        tasks=tasks,
        workers=workers,
        histories={},
        social_edges=[],
        all_worker_ids=tuple(w.worker_id for w in workers),
    )


class TestFeasibilityWithSpeeds:
    def test_fast_worker_feasible_slow_worker_not(self):
        # 20 km away, 2-hour validity: needs >= 10 km/h.
        workers = [worker(0, 0, 0, speed=5.0), worker(1, 0, 0, speed=25.0)]
        tasks = [task(0, 20.0, 0.0, phi=2.0)]
        feasible = compute_feasible(workers, tasks, current_time=0.0)
        assert not feasible.mask[0, 0]
        assert feasible.mask[1, 0]

    def test_candidates_respect_speed(self):
        workers = [worker(0, 0, 0, speed=5.0), worker(1, 0, 0, speed=25.0)]
        tasks = [task(0, 20.0, 0.0, phi=2.0)]
        for kind in ("dense", "grid", "kdtree"):
            pairs = candidate_pairs(workers, tasks, 0.0, index=kind)
            assert [(p.worker_index, p.task_index) for p in pairs] == [(1, 0)]

    def test_speed_validation(self):
        with pytest.raises(ValueError):
            worker(0, 0, 0, speed=0.0)
        with pytest.raises(ValueError):
            worker(0, 0, 0, speed=-3.0)

    def test_travel_hours_scale_inversely_with_speed(self):
        slow = worker(0, 0, 0, speed=5.0)
        fast = worker(1, 0, 0, speed=10.0)
        target = Point(10.0, 0.0)
        assert slow.travel_hours_to(target) == pytest.approx(2.0)
        assert fast.travel_hours_to(target) == pytest.approx(1.0)


class TestAssignmentWithSpeeds:
    def test_only_fast_worker_matched_to_tight_task(self):
        workers = [worker(0, 0, 0, speed=5.0), worker(1, 5, 5, speed=30.0)]
        tasks = [task(0, 20.0, 0.0, phi=1.5)]
        prepared = PreparedInstance(instance_of(workers, tasks))
        assignment = MTAAssigner().assign(prepared)
        assert len(assignment) == 1
        assert assignment.pairs[0].worker.worker_id == 1

    def test_mixed_speeds_maximize_cardinality(self):
        # The slow worker can only make the near task; lexicographic
        # max-cardinality must give the far task to the fast worker.
        workers = [worker(0, 0, 0, speed=5.0), worker(1, 0, 0, speed=50.0)]
        tasks = [task(0, 4.0, 0.0, phi=1.0), task(1, 40.0, 0.0, phi=1.0)]
        prepared = PreparedInstance(instance_of(workers, tasks))
        assignment = MTAAssigner().assign(prepared)
        pairs = {(p.worker.worker_id, p.task.task_id) for p in assignment}
        assert pairs == {(0, 0), (1, 1)}


class TestOnlineWithSpeeds:
    def test_fast_arrival_beats_deadline(self):
        base = instance_of([], [task(0, 10.0, 0.0, phi=3.0)])
        arrivals = [
            WorkerArrival(worker=worker(0, 0, 0, speed=4.0), arrival_time=1.0),
            WorkerArrival(worker=worker(1, 0, 0, speed=40.0), arrival_time=2.0),
        ]
        result = OnlineSimulator(MTAAssigner(), None, batch_hours=1.0).run(
            base, arrivals
        )
        # At t=1 the slow worker cannot make it (10 km in 2 h needs 5 km/h);
        # at t=2 the fast worker can.
        assert result.total_assigned == 1
        assert result.assignment.pairs[0].worker.worker_id == 1

    def test_random_population_mixed_speeds_runs(self):
        rng = np.random.default_rng(0)
        workers = [
            worker(i, *rng.uniform(0, 30, 2), speed=float(rng.uniform(3, 30)))
            for i in range(25)
        ]
        tasks = [task(i, *rng.uniform(0, 30, 2), phi=2.0) for i in range(25)]
        prepared = PreparedInstance(instance_of(workers, tasks))
        assignment = MTAAssigner().assign(prepared)
        # Every matched pair must individually satisfy the speed condition.
        for pair in assignment:
            travel = pair.worker.travel_hours_to(pair.task.location)
            assert travel <= pair.task.expiry_time + 1e-9
