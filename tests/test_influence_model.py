"""Tests for the combined worker-task influence model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.influence import InfluenceComponents, InfluenceModel


class TestInfluenceComponents:
    def test_full_has_everything(self):
        full = InfluenceComponents.full()
        assert full.affinity and full.willingness and full.propagation

    def test_ablations_drop_one(self):
        assert not InfluenceComponents.without_affinity().affinity
        assert not InfluenceComponents.without_willingness().willingness
        assert not InfluenceComponents.without_propagation().propagation

    def test_all_disabled_rejected(self):
        with pytest.raises(ConfigurationError):
            InfluenceComponents(affinity=False, willingness=False, propagation=False)

    def test_hashable_for_grouping(self):
        assert InfluenceComponents.full() == InfluenceComponents()
        assert len({InfluenceComponents.full(), InfluenceComponents()}) == 1


class TestInfluenceModel:
    def test_matrix_shape(self, fitted_models, tiny_instance):
        model = fitted_models.influence_model()
        matrix = model.influence_matrix(tiny_instance.workers[:5], tiny_instance.tasks[:7])
        assert matrix.shape == (5, 7)

    def test_matrix_non_negative(self, full_influence, tiny_instance):
        matrix = full_influence.influence_matrix(tiny_instance.workers, tiny_instance.tasks)
        assert (matrix >= 0.0).all()

    def test_matrix_not_identically_zero(self, full_influence, tiny_instance):
        matrix = full_influence.influence_matrix(tiny_instance.workers, tiny_instance.tasks)
        assert matrix.max() > 0.0

    def test_empty_inputs(self, full_influence):
        assert full_influence.influence_matrix([], []).shape == (0, 0)

    def test_single_pair_matches_matrix(self, full_influence, tiny_instance):
        worker = tiny_instance.workers[0]
        task = tiny_instance.tasks[0]
        matrix = full_influence.influence_matrix([worker], [task])
        assert full_influence.influence(worker, task) == pytest.approx(float(matrix[0, 0]))

    def test_full_influence_is_affinity_times_inner(self, fitted_models, tiny_instance):
        """if = P_aff * sum_i P_wil * P_pro — verified against the
        components computed independently."""
        model = fitted_models.influence_model()
        worker = tiny_instance.workers[0]
        task = tiny_instance.tasks[0]

        graph = fitted_models.graph
        wil = np.zeros(graph.num_workers)
        for worker_id in fitted_models.willingness.worker_ids:
            wil[graph.index_of(worker_id)] = fitted_models.willingness.willingness(
                worker_id, task.location
            )
        source = graph.index_of(worker.worker_id)
        ppro_row = fitted_models.propagation.ppro_matrix_row(source)
        inner = sum(
            wil[i] * ppro_row[i] for i in range(graph.num_workers) if i != source
        )
        expected = fitted_models.affinity.affinity(worker.worker_id, task) * inner
        assert model.influence(worker, task) == pytest.approx(expected, rel=1e-6, abs=1e-12)

    def test_ablation_without_affinity_ignores_topics(self, fitted_models, tiny_instance):
        ablated = fitted_models.influence_model(InfluenceComponents.without_affinity())
        full = fitted_models.influence_model()
        workers, tasks = tiny_instance.workers[:4], tiny_instance.tasks[:4]
        matrix_ablated = ablated.influence_matrix(workers, tasks)
        matrix_full = full.influence_matrix(workers, tasks)
        # Full = affinity * ablated (elementwise), with affinity <= 1 -> full <= ablated.
        assert (matrix_full <= matrix_ablated + 1e-9).all()

    def test_ablation_without_willingness_is_affinity_times_sigma(
        self, fitted_models, tiny_instance
    ):
        ablated = fitted_models.influence_model(InfluenceComponents.without_willingness())
        worker = tiny_instance.workers[1]
        task = tiny_instance.tasks[1]
        expected = (
            fitted_models.affinity.affinity(worker.worker_id, task)
            * ablated.sigma(worker.worker_id)
        )
        assert ablated.influence(worker, task) == pytest.approx(expected, rel=1e-9)

    def test_ablation_without_propagation_sums_other_willingness(
        self, fitted_models, tiny_instance
    ):
        ablated = fitted_models.influence_model(InfluenceComponents.without_propagation())
        worker = tiny_instance.workers[2]
        task = tiny_instance.tasks[2]
        graph = fitted_models.graph
        total = 0.0
        for worker_id in fitted_models.willingness.worker_ids:
            if worker_id == worker.worker_id:
                continue
            total += fitted_models.willingness.willingness(worker_id, task.location)
        expected = fitted_models.affinity.affinity(worker.worker_id, task) * total
        assert ablated.influence(worker, task) == pytest.approx(expected, rel=1e-6)

    def test_sigma_positive_for_connected_worker(self, fitted_models, tiny_instance):
        worker = tiny_instance.workers[0]
        assert fitted_models.influence_model().sigma(worker.worker_id) >= 1.0 - 1e-6

    def test_propagation_to_others_excludes_self(self, fitted_models, tiny_instance):
        model = fitted_models.influence_model()
        worker = tiny_instance.workers[0]
        assert model.propagation_to_others(worker.worker_id) <= model.sigma(worker.worker_id)
        assert model.propagation_to_others(worker.worker_id) >= 0.0
